"""Declarative schema (de)serialization.

The execution architecture of Figure 2 keeps decision-flow schemas in a
repository; this module provides the storage format: a plain-dict (hence
JSON-able) encoding of schemas whose parts are declarative —

* all condition forms (literals, comparisons, null/exception tests,
  and/or/not; user predicates are code and therefore not serializable);
* query tasks whose result function is a :func:`~repro.core.tasks.constant`;
* rule-set synthesis tasks with constant contributions;

which covers every schema the workload generator produces, so generated
patterns can be persisted and reloaded bit-for-bit.  Tasks wrapping
arbitrary Python callables raise :class:`SerializationError` with a
pointer to what must be rewritten declaratively.

Beyond schemas, the module round-trips the two execution-recipe values —
:class:`~repro.core.strategy.Strategy` and
:class:`~repro.api.config.ExecutionConfig` — which is what lets the
sharded runtime ship complete shard workloads (schema + strategy +
config) to worker processes as plain dicts.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.attribute import Attribute
from repro.core.conditions import And, Condition, Literal, Not, Or
from repro.core.predicates import AttrRef, Comparison, IsException, IsNull, Op
from repro.core.rules import Rule, RuleSetTask
from repro.core.schema import DecisionFlowSchema
from repro.core.strategy import Strategy
from repro.core.tasks import QueryTask, SynthesisTask, Task, constant
from repro.errors import ReproError
from repro.nulls import NULL

__all__ = [
    "SerializationError",
    "condition_to_dict",
    "condition_from_dict",
    "task_to_dict",
    "task_from_dict",
    "schema_to_dict",
    "schema_from_dict",
    "dumps_schema",
    "loads_schema",
    "strategy_to_dict",
    "strategy_from_dict",
    "dumps_strategy",
    "loads_strategy",
    "config_to_dict",
    "config_from_dict",
]


class SerializationError(ReproError):
    """The object contains non-declarative parts (arbitrary Python code)."""


# -- scalars -----------------------------------------------------------------

def _value_to_dict(value: object) -> Any:
    if value is NULL:
        return {"$null": True}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return {"$seq": [_value_to_dict(v) for v in value]}
    raise SerializationError(f"value {value!r} is not serializable")


def _value_from_dict(data: Any) -> object:
    if isinstance(data, dict):
        if data.get("$null"):
            return NULL
        if "$seq" in data:
            return tuple(_value_from_dict(v) for v in data["$seq"])
        raise SerializationError(f"unrecognized value encoding: {data!r}")
    return data


# -- conditions ---------------------------------------------------------------

def condition_to_dict(condition: Condition) -> dict:
    if isinstance(condition, Literal):
        return {"kind": "literal", "value": condition.value}
    if isinstance(condition, Comparison):
        right: Any
        if isinstance(condition.right, AttrRef):
            right = {"$attr": condition.right.name}
        else:
            right = _value_to_dict(condition.right)
        return {
            "kind": "comparison",
            "left": condition.left,
            "op": condition.op.name,
            "right": right,
        }
    if isinstance(condition, IsNull):
        return {"kind": "is_null", "name": condition.name}
    if isinstance(condition, IsException):
        return {"kind": "is_exception", "name": condition.name}
    if isinstance(condition, And):
        return {"kind": "and", "children": [condition_to_dict(c) for c in condition.children]}
    if isinstance(condition, Or):
        return {"kind": "or", "children": [condition_to_dict(c) for c in condition.children]}
    if isinstance(condition, Not):
        return {"kind": "not", "child": condition_to_dict(condition.child)}
    raise SerializationError(
        f"condition {condition!r} is not serializable (user predicates are code; "
        "rewrite them with comparisons/null-tests to persist the schema)"
    )


def condition_from_dict(data: dict) -> Condition:
    kind = data["kind"]
    if kind == "literal":
        return Literal(data["value"])
    if kind == "comparison":
        right = data["right"]
        if isinstance(right, dict) and "$attr" in right:
            right_value: object = AttrRef(right["$attr"])
        else:
            right_value = _value_from_dict(right)
        return Comparison(data["left"], Op[data["op"]], right_value)
    if kind == "is_null":
        return IsNull(data["name"])
    if kind == "is_exception":
        return IsException(data["name"])
    if kind == "and":
        return And(*(condition_from_dict(c) for c in data["children"]))
    if kind == "or":
        return Or(*(condition_from_dict(c) for c in data["children"]))
    if kind == "not":
        return Not(condition_from_dict(data["child"]))
    raise SerializationError(f"unknown condition kind {kind!r}")


# -- tasks --------------------------------------------------------------------

def task_to_dict(task: Task) -> dict:
    if isinstance(task, QueryTask):
        payload = getattr(task.fn, "constant_value", _MISSING)
        if payload is _MISSING:
            raise SerializationError(
                f"query task {task.name!r} wraps an arbitrary function; only "
                "constant-result queries are serializable"
            )
        return {
            "kind": "query",
            "name": task.name,
            "inputs": list(task.inputs),
            "cost": task.cost,
            "description": task.description,
            "value": _value_to_dict(payload),
        }
    if isinstance(task, RuleSetTask):
        rules = []
        for rule in task.rules:
            if callable(rule.contribution):
                raise SerializationError(
                    f"rule {rule.name!r} has a callable contribution; only "
                    "constant contributions are serializable"
                )
            rules.append(
                {
                    "name": rule.name,
                    "condition": condition_to_dict(rule.condition),
                    "contribution": _value_to_dict(rule.contribution),
                }
            )
        return {
            "kind": "rule_set",
            "name": task.name,
            "inputs": list(task.inputs),
            "policy": task.policy_name,
            "default": _value_to_dict(task.default),
            "rules": rules,
        }
    if isinstance(task, SynthesisTask):
        raise SerializationError(
            f"synthesis task {task.name!r} wraps an arbitrary function; use a "
            "rule set with constant contributions to persist it"
        )
    raise SerializationError(f"unknown task type {type(task).__name__}")


class _Missing:
    pass


_MISSING = _Missing()


def task_from_dict(data: dict) -> Task:
    kind = data["kind"]
    if kind == "query":
        return QueryTask(
            data["name"],
            tuple(data["inputs"]),
            constant(_value_from_dict(data["value"])),
            data["cost"],
            data.get("description", ""),
        )
    if kind == "rule_set":
        rules = [
            Rule(
                r["name"],
                condition_from_dict(r["condition"]),
                _value_from_dict(r["contribution"]),
            )
            for r in data["rules"]
        ]
        return RuleSetTask(
            data["name"],
            tuple(data["inputs"]),
            rules,
            data.get("policy", "collect"),
            _value_from_dict(data.get("default", {"$null": True})),
        )
    raise SerializationError(f"unknown task kind {kind!r}")


# -- schemas ----------------------------------------------------------------------

_FORMAT_VERSION = 1


def schema_to_dict(schema: DecisionFlowSchema) -> dict:
    """Encode a schema as plain dicts (JSON-able)."""
    attributes = []
    for spec in schema:
        entry: dict[str, Any] = {"name": spec.name}
        if spec.is_target:
            entry["target"] = True
        if spec.doc:
            entry["doc"] = spec.doc
        if spec.task is not None:
            entry["task"] = task_to_dict(spec.task)
            entry["condition"] = condition_to_dict(spec.condition)
        attributes.append(entry)
    return {"format": _FORMAT_VERSION, "name": schema.name, "attributes": attributes}


def schema_from_dict(data: dict) -> DecisionFlowSchema:
    """Reconstruct a schema encoded by :func:`schema_to_dict`."""
    if data.get("format") != _FORMAT_VERSION:
        raise SerializationError(f"unsupported schema format: {data.get('format')!r}")
    attributes = []
    for entry in data["attributes"]:
        if "task" not in entry:
            attributes.append(Attribute(entry["name"], doc=entry.get("doc", "")))
            continue
        attributes.append(
            Attribute(
                entry["name"],
                task=task_from_dict(entry["task"]),
                condition=condition_from_dict(entry["condition"]),
                is_target=entry.get("target", False),
                doc=entry.get("doc", ""),
            )
        )
    return DecisionFlowSchema(attributes, name=data.get("name", "decision-flow"))


def dumps_schema(schema: DecisionFlowSchema, indent: int | None = 2) -> str:
    """Schema → JSON text."""
    return json.dumps(schema_to_dict(schema), indent=indent)


def loads_schema(text: str) -> DecisionFlowSchema:
    """JSON text → schema."""
    return schema_from_dict(json.loads(text))


# -- strategies ----------------------------------------------------------------


def strategy_to_dict(strategy: Strategy) -> dict:
    """Encode a strategy as a plain dict (JSON-able).

    The paper-style code carries the four section-5 options; the
    ``cancel_unneeded`` extension travels as its own flag.
    """
    if not isinstance(strategy, Strategy):
        raise SerializationError(f"expected a Strategy, got {strategy!r}")
    return {"code": strategy.code, "cancel_unneeded": strategy.cancel_unneeded}


def strategy_from_dict(data: dict) -> Strategy:
    """Reconstruct a strategy encoded by :func:`strategy_to_dict`."""
    try:
        code = data["code"]
    except (TypeError, KeyError):
        raise SerializationError(f"not a strategy encoding: {data!r}") from None
    return Strategy.parse(code, cancel_unneeded=bool(data.get("cancel_unneeded", False)))


def dumps_strategy(strategy: Strategy, indent: int | None = None) -> str:
    """Strategy → JSON text."""
    return json.dumps(strategy_to_dict(strategy), indent=indent)


def loads_strategy(text: str) -> Strategy:
    """JSON text → strategy."""
    return strategy_from_dict(json.loads(text))


# -- execution configs ---------------------------------------------------------
#
# ExecutionConfig lives one layer up in repro.api; importing it lazily keeps
# repro.core importable on its own while still giving the storage format a
# single home next to the schema codec it travels with.


def config_to_dict(config) -> dict:
    """Encode an :class:`~repro.api.config.ExecutionConfig` as plain dicts.

    Backend options must themselves be plain values (scalars and
    sequences); anything richer — a pre-built ``DbFunction``, a
    ``DbParams`` — raises :class:`SerializationError` naming the option,
    since a worker process must be able to rebuild the backend from the
    registry alone.
    """
    from repro.api.config import ExecutionConfig

    if not isinstance(config, ExecutionConfig):
        raise SerializationError(f"expected an ExecutionConfig, got {config!r}")
    options = {}
    for key, value in config.backend_options.items():
        try:
            options[key] = _value_to_dict(value)
        except SerializationError:
            raise SerializationError(
                f"backend option {key!r} of backend {config.backend!r} holds "
                f"non-serializable value {value!r}; pass plain scalars (or let "
                "the backend factory rebuild it from them)"
            ) from None
    return {
        "strategy": strategy_to_dict(config.strategy),
        "halt_policy": config.halt_policy,
        "share_results": config.share_results,
        "backend": config.backend,
        "backend_options": options,
        "engine": config.engine,
        "shards": config.shards,
        "executor": config.executor,
        "placement": config.placement,
        "dispatch": config.dispatch,
        "query_cache": config.query_cache,
        "cohorts": config.cohorts,
        "observe": config.observe,
    }


def config_from_dict(data: dict):
    """Reconstruct a config encoded by :func:`config_to_dict`."""
    from repro.api.config import ExecutionConfig

    try:
        strategy_data = data["strategy"]
    except (TypeError, KeyError):
        raise SerializationError(f"not a config encoding: {data!r}") from None
    return ExecutionConfig(
        strategy=strategy_from_dict(strategy_data),
        halt_policy=data.get("halt_policy", "cancel"),
        share_results=bool(data.get("share_results", False)),
        backend=data.get("backend", "ideal"),
        backend_options={
            key: _value_from_dict(value)
            for key, value in data.get("backend_options", {}).items()
        },
        engine=data.get("engine", "reference"),
        shards=data.get("shards", 1),
        executor=data.get("executor", "serial"),
        placement=data.get("placement", "hash"),
        dispatch=data.get("dispatch", "per-event"),
        query_cache=bool(data.get("query_cache", False)),
        cohorts=bool(data.get("cohorts", False)),
        observe=bool(data.get("observe", False)),
    )
