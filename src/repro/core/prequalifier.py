"""The prequalifier: building the candidate task pool (section 3/4).

The prequalifier maintains, per flow instance, the pool of query tasks
eligible for execution:

* under **Conservative** (option C) only READY+ENABLED attributes qualify;
* under **Speculative** (option S) READY attributes qualify too — they may
  be executed before their enabling condition is known;
* under **Propagation** (option P) attributes detected *unneeded* by
  backward propagation are removed from the pool.

Synthesis tasks never enter the pool — the engine executes them inline.
"""

from __future__ import annotations

from repro.core.instance import InstanceRuntime

__all__ = ["candidate_pool"]


def candidate_pool(instance: InstanceRuntime) -> list[str]:
    """Names of query attributes currently eligible for launch.

    Returned in schema declaration order; the scheduler applies the
    heuristic ordering and the %Permitted cut.
    """
    pool: list[str] = []
    for name in instance.schema.non_source_names:
        spec = instance.schema[name]
        if spec.task is None or not spec.task.is_query:
            continue
        if name in instance.launched:
            continue
        if instance._is_executable(name):
            pool.append(name)
    return pool
