"""Plain-text rendering of experiment results: tables and ASCII charts.

The benchmark targets print the same rows/series the paper's figures
report; these helpers keep that output readable in a terminal and in the
captured ``bench_output.txt``.
"""

from __future__ import annotations

import json
from typing import Mapping, Sequence

__all__ = ["format_value", "format_table", "ascii_chart", "json_value", "render_json"]

_MARKERS = "ox+*#@%&"


def format_value(value: object, floatfmt: str = ".1f") -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else "-inf"
        return format(value, floatfmt)
    return str(value)


def json_value(value: object) -> object:
    """A JSON-safe cell value: NaN/inf become None, exotic types stringify."""
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            return None
        return value
    if value is None or isinstance(value, (bool, int, str)):
        return value
    return str(value)


def render_json(
    figure_id: str,
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    notes: Sequence[str] = (),
) -> str:
    """Machine-readable rendering of one experiment result.

    Rows come out both positional (``rows``) and as header-keyed records
    (``records``), so downstream tooling can pick whichever is handier.
    """
    safe_rows = [[json_value(cell) for cell in row] for row in rows]
    payload = {
        "figure_id": figure_id,
        "title": title,
        "headers": list(headers),
        "rows": safe_rows,
        "records": [dict(zip(headers, row)) for row in safe_rows],
        "notes": list(notes),
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    floatfmt: str = ".1f",
    title: str | None = None,
) -> str:
    """A boxless, right-aligned monospace table."""
    rendered = [[format_value(cell, floatfmt) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 68,
    height: int = 18,
    title: str | None = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """A rough scatter/line chart for eyeballing figure shapes in a terminal.

    Each series gets a marker character; overlapping points show the later
    series' marker.  Axes are linear and auto-scaled over all points.
    """
    points = [(x, y) for values in series.values() for x, y in values]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (label, values) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in values:
            col = round((x - x_min) / x_span * (width - 1))
            row = (height - 1) - round((y - y_min) / y_span * (height - 1))
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    top = format_value(y_max, ".4g")
    bottom = format_value(y_min, ".4g")
    label_width = max(len(top), len(bottom), len(y_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top.rjust(label_width)
        elif row_index == height - 1:
            prefix = bottom.rjust(label_width)
        elif row_index == height // 2:
            prefix = y_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    lines.append(
        " " * label_width
        + "  "
        + format_value(x_min, ".4g")
        + f" {x_label} ".center(width - 12)
        + format_value(x_max, ".4g")
    )
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={label}" for i, label in enumerate(series)
    )
    lines.append(" " * label_width + "  legend: " + legend)
    return "\n".join(lines)
