"""Machine-readable benchmark artifacts: writing and schema checking.

Every gated benchmark records its headline numbers as a
``results/BENCH_<name>.json`` artifact so the perf trajectory is
trackable across PRs.  This module is the single home of that format —
the schema the CI smoke step asserts, the writer the benchmark
``conftest`` fixture wraps, and the validator experiment runners reuse
when they persist their own run records.

An artifact is a JSON object carrying at least :data:`BENCH_ARTIFACT_KEYS`:
the benchmark name, the run mode (``full`` or ``quick``), the usable host
core count, a non-empty ``metrics`` object, and a ``gate`` object with a
``passed`` flag.  Quick (CI smoke) runs write ``BENCH_<name>_quick.json``
under :data:`CI_ARTIFACT_DIR` (override with ``REPRO_BENCH_ARTIFACT_DIR``)
— a gitignored scratch directory CI uploads from — so reduced sweeps
never clobber, or even sit next to, the recorded full-size baselines.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

__all__ = [
    "BENCH_ARTIFACT_KEYS",
    "CI_ARTIFACT_DIR",
    "RESULTS_DIR",
    "usable_cores",
    "validate_bench_artifact",
    "write_bench_artifact",
]

#: The repository-level artifact directory benchmarks write into.
RESULTS_DIR = Path(__file__).resolve().parents[3] / "results"

#: Where quick (CI smoke) artifacts land — kept out of ``results/`` so
#: reduced-size runs never accumulate next to the canonical recordings.
#: ``REPRO_BENCH_ARTIFACT_DIR`` overrides it (CI points this at its
#: upload directory).
CI_ARTIFACT_DIR = RESULTS_DIR / "ci"

#: Keys every BENCH_*.json artifact must carry (CI asserts this schema).
BENCH_ARTIFACT_KEYS = ("bench", "mode", "host_cores", "metrics", "gate")


def usable_cores() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def validate_bench_artifact(data: dict) -> None:
    """Schema check shared by the CI smoke step and the writer itself."""
    missing = [key for key in BENCH_ARTIFACT_KEYS if key not in data]
    if missing:
        raise ValueError(f"bench artifact missing keys: {missing}")
    if data["mode"] not in ("full", "quick"):
        raise ValueError(f"bench artifact mode must be full/quick, got {data['mode']!r}")
    if not isinstance(data["metrics"], dict) or not data["metrics"]:
        raise ValueError("bench artifact metrics must be a non-empty object")
    gate = data["gate"]
    if not isinstance(gate, dict) or "passed" not in gate:
        raise ValueError("bench artifact gate must carry a 'passed' flag")


def write_bench_artifact(
    name: str,
    metrics: dict,
    gate: dict,
    *,
    quick: bool = False,
    results_dir: Path | None = None,
) -> Path:
    """Validate and persist one ``BENCH_<name>[_quick].json`` artifact.

    Returns the written path.  The payload is validated before anything
    touches disk, so a malformed artifact fails the producing run rather
    than the CI assertion step downstream.
    """
    if results_dir is None and quick:
        override = os.environ.get("REPRO_BENCH_ARTIFACT_DIR")
        results_dir = Path(override) if override else CI_ARTIFACT_DIR
    payload = {
        "bench": name,
        "mode": "quick" if quick else "full",
        "host_cores": usable_cores(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "metrics": metrics,
        "gate": gate,
    }
    validate_bench_artifact(payload)
    directory = RESULTS_DIR if results_dir is None else Path(results_dir)
    directory.mkdir(parents=True, exist_ok=True)
    suffix = "_quick" if quick else ""
    path = directory / f"BENCH_{name}{suffix}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
