"""Experiment runner shared by the benchmark suite and the examples.

Two measurement modes, matching section 5:

* :func:`evaluate_code` — *infinite resources*: one instance per seed on a
  fresh ``"ideal"`` backend; Work and TimeInUnits are averaged over
  seeds.  Star codes ("PC*100") expand to both heuristics and average
  over them, as the paper's figures do.
* :func:`measure_open_system` — *bounded resources*: Poisson arrivals into
  one :class:`~repro.api.DecisionService` on the ``"bounded"`` backend;
  response times are collected in steady state (TimeInSeconds).

Both modes drive the high-level :mod:`repro.api` facade.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean, pstdev
from typing import Sequence

from repro.analysis.guidelines import StrategyPoint
from repro.api.config import ExecutionConfig
from repro.api.service import DecisionService
from repro.core.metrics import InstanceMetrics
from repro.core.strategy import Strategy, expand_pattern
from repro.errors import ExecutionError
from repro.simdb.database import DbParams
from repro.simdb.rng import derive_rng
from repro.workload.generator import GeneratedPattern, generate_pattern
from repro.workload.params import PatternParams

__all__ = [
    "RunPoint",
    "StrategyResult",
    "run_pattern_once",
    "evaluate_code",
    "evaluate_codes",
    "strategy_points",
    "OpenSystemResult",
    "measure_open_system",
]


@dataclass(frozen=True)
class RunPoint:
    """One instance execution on the ideal database."""

    seed: int
    code: str
    work: int
    time_units: float
    speculative_wasted_units: int
    unneeded_detected: int


@dataclass(frozen=True)
class StrategyResult:
    """Seed-averaged profile of one strategy code on one pattern family."""

    code: str
    mean_work: float
    std_work: float
    mean_time_units: float
    std_time_units: float
    runs: tuple[RunPoint, ...]

    @property
    def n(self) -> int:
        return len(self.runs)


def run_pattern_once(
    pattern: GeneratedPattern,
    strategy: Strategy,
    halt_policy: str = "cancel",
) -> InstanceMetrics:
    """One instance on a fresh ideal backend."""
    service = DecisionService(
        pattern.schema, ExecutionConfig(strategy=strategy, halt_policy=halt_policy)
    )
    return service.submit(pattern.source_values).wait()


def evaluate_code(
    params: PatternParams,
    code: str,
    seeds: Sequence[int] = tuple(range(10)),
    halt_policy: str = "cancel",
) -> StrategyResult:
    """Average a (possibly starred) strategy code over pattern seeds."""
    strategies = expand_pattern(code) if "*" in code else [Strategy.parse(code)]
    runs: list[RunPoint] = []
    for seed in seeds:
        pattern = generate_pattern(params.with_seed(seed))
        for strategy in strategies:
            metrics = run_pattern_once(pattern, strategy, halt_policy)
            runs.append(
                RunPoint(
                    seed=seed,
                    code=strategy.code,
                    work=metrics.work_units,
                    time_units=metrics.elapsed,
                    speculative_wasted_units=metrics.speculative_wasted_units,
                    unneeded_detected=metrics.unneeded_detected,
                )
            )
    works = [float(r.work) for r in runs]
    times = [r.time_units for r in runs]
    return StrategyResult(
        code=code,
        mean_work=mean(works),
        std_work=pstdev(works) if len(works) > 1 else 0.0,
        mean_time_units=mean(times),
        std_time_units=pstdev(times) if len(times) > 1 else 0.0,
        runs=tuple(runs),
    )


def evaluate_codes(
    params: PatternParams,
    codes: Sequence[str],
    seeds: Sequence[int] = tuple(range(10)),
    halt_policy: str = "cancel",
) -> dict[str, StrategyResult]:
    return {code: evaluate_code(params, code, seeds, halt_policy) for code in codes}


def strategy_points(results: dict[str, StrategyResult]) -> list[StrategyPoint]:
    """Convert runner results into analysis-layer strategy points."""
    return [
        StrategyPoint(code=r.code, work=r.mean_work, time_units=r.mean_time_units)
        for r in results.values()
    ]


@dataclass(frozen=True)
class OpenSystemResult:
    """Steady-state measurement on the bounded-resource database."""

    code: str
    arrival_rate_per_s: float
    completed: int
    measured: int
    mean_seconds: float
    p95_seconds: float
    mean_work: float
    mean_gmpl: float
    sim_ms: float

    @property
    def mean_ms(self) -> float:
        return self.mean_seconds * 1000.0


def measure_open_system(
    pattern: GeneratedPattern,
    code: str,
    arrival_rate_per_s: float,
    db_params: DbParams | None = None,
    n_instances: int = 300,
    warmup_instances: int = 50,
    seed: int = 0,
) -> OpenSystemResult:
    """Poisson arrivals at the given rate into one engine + simulated DB.

    The clock is in milliseconds.  The first ``warmup_instances`` completions
    are discarded; remaining instances give the measured TimeInSeconds.
    """
    strategies = expand_pattern(code) if "*" in code else [Strategy.parse(code)]
    # A starred code denotes a family with near-identical profiles (the
    # paper plots them as one curve); measure its first member.
    strategy = strategies[0]

    service = DecisionService(
        pattern.schema,
        ExecutionConfig(strategy=strategy, backend="bounded"),
        params=db_params or DbParams(),
        seed=seed,
    )
    arrival_rng = derive_rng(seed, "arrivals", code, arrival_rate_per_s)
    rate_per_ms = arrival_rate_per_s / 1000.0

    arrival_time = 0.0
    arrival_times = []
    for _ in range(n_instances):
        arrival_time += arrival_rng.expovariate(rate_per_ms)
        arrival_times.append(arrival_time)
    handles = service.submit_stream(arrival_times, values=pattern.source_values)

    finished = [handle.metrics for handle in handles if handle.done]
    if len(finished) < n_instances:
        raise ExecutionError(
            f"open-system run stalled: {len(finished)}/{n_instances} instances finished"
        )
    # Steady state: order by completion and drop the warm-up prefix.
    finished.sort(key=lambda m: m.finish_time)
    measured = finished[warmup_instances:]
    seconds = sorted(m.elapsed / 1000.0 for m in measured)
    p95_index = min(len(seconds) - 1, int(0.95 * len(seconds)))
    return OpenSystemResult(
        code=code,
        arrival_rate_per_s=arrival_rate_per_s,
        completed=len(finished),
        measured=len(measured),
        mean_seconds=mean(seconds),
        p95_seconds=seconds[p95_index],
        mean_work=mean(float(m.work_units) for m in measured),
        mean_gmpl=service.database.mean_gmpl(),
        sim_ms=service.now,
    )
