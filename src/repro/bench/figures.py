"""Experiment definitions: one function per table/figure of section 5.

Each function runs the paper's experiment on our substrate and returns a
:class:`FigureResult` whose rows mirror the figure's series.  The
benchmark targets under ``benchmarks/`` are thin wrappers that execute
these functions and print the result; EXPERIMENTS.md records paper-vs-
measured shape comparisons.

Two constants are illegible in the source scan and are set here (their
values only shift curves, not orderings): Figure 7 and Figure 8(b) use
``%enabled = 50``; Figure 9(b) uses ``%enabled = 25`` so that the
parallel strategies' Work fits under the calibrated database's saturation
bound at the studied throughput of 10 instances/second.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.guidelines import guideline_frontier, min_time_for_budget
from repro.analysis.tuning import tune
from repro.bench.report import ascii_chart, format_table, render_json
from repro.bench.runner import (
    evaluate_code,
    evaluate_codes,
    measure_open_system,
    strategy_points,
)
from repro.simdb.database import DbParams
from repro.simdb.profiler import DbFunction, profile_database
from repro.workload.generator import generate_pattern
from repro.workload.params import TABLE1_ROWS, PatternParams

__all__ = [
    "FigureResult",
    "table1",
    "fig5a",
    "fig5b",
    "fig6a",
    "fig6b",
    "fig7a",
    "fig7b",
    "fig8a",
    "fig8b",
    "fig9a",
    "fig9b",
    "ablation_halt_policy",
    "ablation_cancel_unneeded",
    "ablation_profile_mode",
    "ablation_sharing",
]

DEFAULT_SEEDS = tuple(range(10))

#: The full strategy grid used to build guideline maps (P option only —
#: N strategies are dominated, as Figure 5 shows).
GUIDELINE_GRID = tuple(
    f"P{s}{h}{p}" for s in "SC" for h in "EC" for p in (0, 25, 50, 75, 100)
)


@dataclass
class FigureResult:
    """Rows + rendering of one reproduced table/figure."""

    figure_id: str
    title: str
    headers: list[str]
    rows: list[list[object]]
    notes: list[str] = field(default_factory=list)
    chart: str | None = None
    floatfmt: str = ".1f"

    def render(self) -> str:
        parts = [format_table(self.headers, self.rows, self.floatfmt, title=f"{self.figure_id}: {self.title}")]
        if self.chart:
            parts.append(self.chart)
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n\n".join(parts)

    def render_json(self) -> str:
        """Machine-readable rendering alongside the text tables."""
        return render_json(self.figure_id, self.title, self.headers, self.rows, self.notes)


def _series_chart(rows, codes, title, x_label, y_label, value_offset=1):
    series = {
        code: [(row[0], row[value_offset + index]) for row in rows]
        for index, code in enumerate(codes)
    }
    return ascii_chart(series, title=title, x_label=x_label, y_label=y_label)


# ---------------------------------------------------------------------------
# Table 1 — simulation parameters
# ---------------------------------------------------------------------------


def table1() -> FigureResult:
    """Table 1: simulation parameters (workload + database defaults)."""
    db = DbParams()
    rows = [list(row) for row in TABLE1_ROWS]
    return FigureResult(
        figure_id="Table 1",
        title="Simulation parameters",
        headers=["Parameter", "Range", "Description"],
        rows=rows,
        notes=[
            f"database defaults in code: num_cpus={db.num_cpus}, num_disks={db.num_disks}, "
            f"unit_cpu_cost={db.unit_cpu_cost}, unit_io_cost={db.unit_io_cost}, "
            f"%IO_hit={db.pct_io_hit:g}, IO_delay={db.io_delay_ms:g}ms "
            f"(+ calibration constant cpu_ms={db.cpu_ms:g}ms, not in Table 1)",
        ],
    )


# ---------------------------------------------------------------------------
# Figure 5 — minimizing work (sequential, conservative)
# ---------------------------------------------------------------------------

_FIG5_CODES = ("PCC0", "PCE0", "NCC0", "NCE0")


def fig5a(seeds: Sequence[int] = DEFAULT_SEEDS) -> FigureResult:
    """Figure 5(a): Work vs %enabled for *C*0 strategies (nb_rows = 4)."""
    rows = []
    for enabled in range(10, 101, 10):
        params = PatternParams(nb_rows=4, pct_enabled=enabled)
        results = evaluate_codes(params, _FIG5_CODES, seeds)
        rows.append([enabled] + [results[c].mean_work for c in _FIG5_CODES])
    chart = _series_chart(rows, _FIG5_CODES, "Work vs %enabled", "%enabled", "Work")
    return FigureResult(
        figure_id="Fig 5(a)",
        title="Work vs %enabled (nb_rows=4, sequential conservative strategies)",
        headers=["%enabled", *_FIG5_CODES],
        rows=rows,
        chart=chart,
        notes=[
            "expected shape: two clusters (P vs N); N roughly linear in %enabled; "
            "P's extra savings largest at low %enabled (paper: ~60% at 10%)",
        ],
    )


def fig5b(seeds: Sequence[int] = DEFAULT_SEEDS) -> FigureResult:
    """Figure 5(b): Work vs nb_rows for *C*0 strategies (%enabled = 75)."""
    rows = []
    for nb_rows in range(2, 9):
        params = PatternParams(nb_rows=nb_rows, pct_enabled=75)
        results = evaluate_codes(params, _FIG5_CODES, seeds)
        rows.append([nb_rows] + [results[c].mean_work for c in _FIG5_CODES])
    chart = _series_chart(rows, _FIG5_CODES, "Work vs nb_rows", "nb_rows", "Work")
    return FigureResult(
        figure_id="Fig 5(b)",
        title="Work vs nb_rows (%enabled=75, sequential conservative strategies)",
        headers=["nb_rows", *_FIG5_CODES],
        rows=rows,
        chart=chart,
        notes=["expected shape: P cluster below N cluster across all row counts"],
    )


# ---------------------------------------------------------------------------
# Figure 6 — minimizing response time (max parallelism, S vs C)
# ---------------------------------------------------------------------------

_FIG6_CODES = ("PC*100", "PS*100", "PCE0")


def _fig6_rows(seeds: Sequence[int]):
    time_rows, work_rows = [], []
    for enabled in range(10, 101, 10):
        params = PatternParams(nb_rows=4, pct_enabled=enabled)
        results = evaluate_codes(params, _FIG6_CODES, seeds)
        time_rows.append([enabled] + [results[c].mean_time_units for c in _FIG6_CODES])
        work_rows.append([enabled] + [results[c].mean_work for c in _FIG6_CODES])
    return time_rows, work_rows


def fig6a(seeds: Sequence[int] = DEFAULT_SEEDS) -> FigureResult:
    """Figure 6(a): TimeInUnits vs %enabled (nb_rows = 4)."""
    time_rows, _ = _fig6_rows(seeds)
    chart = _series_chart(time_rows, _FIG6_CODES, "TimeInUnits vs %enabled", "%enabled", "T")
    return FigureResult(
        figure_id="Fig 6(a)",
        title="TimeInUnits vs %enabled (nb_rows=4)",
        headers=["%enabled", *_FIG6_CODES],
        rows=time_rows,
        chart=chart,
        notes=[
            "expected shape: full parallelism well below PCE0 (paper: ~60% lower at "
            "%enabled=25); PS*100 at or slightly below PC*100",
        ],
    )


def fig6b(seeds: Sequence[int] = DEFAULT_SEEDS) -> FigureResult:
    """Figure 6(b): Work vs %enabled for the same strategies."""
    _, work_rows = _fig6_rows(seeds)
    chart = _series_chart(work_rows, _FIG6_CODES, "Work vs %enabled", "%enabled", "Work")
    return FigureResult(
        figure_id="Fig 6(b)",
        title="Work vs %enabled (nb_rows=4)",
        headers=["%enabled", *_FIG6_CODES],
        rows=work_rows,
        chart=chart,
        notes=[
            "expected shape: PS*100 pays a work premium over PC*100, shrinking as "
            "%enabled grows; PC*100 close to PCE0",
        ],
    )


# ---------------------------------------------------------------------------
# Figure 7 — effect of the degree of parallelism
# ---------------------------------------------------------------------------

_FIG7_FAMILIES = ("PCC", "PCE", "PSC", "PSE")
FIG7_PCT_ENABLED = 50.0  # illegible in the source scan; see module docstring


def _fig7_rows(seeds: Sequence[int], pct_enabled: float):
    time_rows, work_rows = [], []
    params = PatternParams(nb_rows=4, pct_enabled=pct_enabled)
    for permitted in (0, 20, 40, 60, 80, 100):
        codes = [f"{family}{permitted}" for family in _FIG7_FAMILIES]
        results = evaluate_codes(params, codes, seeds)
        time_rows.append([permitted] + [results[c].mean_time_units for c in codes])
        work_rows.append([permitted] + [results[c].mean_work for c in codes])
    return time_rows, work_rows


def fig7a(
    seeds: Sequence[int] = DEFAULT_SEEDS, pct_enabled: float = FIG7_PCT_ENABLED
) -> FigureResult:
    """Figure 7(a): TimeInUnits vs %Permitted for the four P families."""
    time_rows, _ = _fig7_rows(seeds, pct_enabled)
    chart = _series_chart(
        time_rows, _FIG7_FAMILIES, "TimeInUnits vs %Permitted", "%Permitted", "T"
    )
    return FigureResult(
        figure_id="Fig 7(a)",
        title=f"TimeInUnits vs %Permitted (nb_rows=4, %enabled={pct_enabled:g})",
        headers=["%Permitted", *(f"{f}*" for f in _FIG7_FAMILIES)],
        rows=time_rows,
        chart=chart,
        notes=[
            "expected shape: Earliest (P*E*) below Cheapest (P*C*) throughout, "
            "largest gaps at mid parallelism",
        ],
    )


def fig7b(
    seeds: Sequence[int] = DEFAULT_SEEDS, pct_enabled: float = FIG7_PCT_ENABLED
) -> FigureResult:
    """Figure 7(b): Work vs %Permitted for the four P families."""
    _, work_rows = _fig7_rows(seeds, pct_enabled)
    chart = _series_chart(
        work_rows, _FIG7_FAMILIES, "Work vs %Permitted", "%Permitted", "Work"
    )
    return FigureResult(
        figure_id="Fig 7(b)",
        title=f"Work vs %Permitted (nb_rows=4, %enabled={pct_enabled:g})",
        headers=["%Permitted", *(f"{f}*" for f in _FIG7_FAMILIES)],
        rows=work_rows,
        chart=chart,
        notes=[
            "expected shape: Earliest and Cheapest consume about the same work; "
            "speculative families sit above conservative ones",
        ],
    )


# ---------------------------------------------------------------------------
# Figure 8 — guideline maps (minT vs Work)
# ---------------------------------------------------------------------------


def _guideline_rows(sweep_name, sweep_values, params_for, seeds):
    rows, all_steps = [], {}
    for value in sweep_values:
        results = evaluate_codes(params_for(value), GUIDELINE_GRID, seeds)
        frontier = guideline_frontier(strategy_points(results))
        all_steps[value] = frontier
        for step in frontier:
            rows.append([value, step.work, step.time_units, step.code])
    return rows, all_steps


def fig8a(seeds: Sequence[int] = DEFAULT_SEEDS) -> FigureResult:
    """Figure 8(a): guideline map minT vs Work, %enabled ∈ {10,25,50,75,100}."""
    values = (10, 25, 50, 75, 100)
    rows, steps = _guideline_rows(
        "%enabled", values, lambda v: PatternParams(nb_rows=4, pct_enabled=v), seeds
    )
    chart = ascii_chart(
        {f"%en={v}": [(s.work, s.time_units) for s in steps[v]] for v in values},
        title="minT vs Work (frontier steps)",
        x_label="Work",
        y_label="minT",
    )
    return FigureResult(
        figure_id="Fig 8(a)",
        title="Guideline map: minT vs Work while %enabled varies (nb_rows=4)",
        headers=["%enabled", "Work", "minT", "strategy"],
        rows=rows,
        chart=chart,
        notes=["each row is one Pareto step: spending >= Work buys response time minT"],
    )


FIG8B_PCT_ENABLED = 50.0  # illegible in the source scan; see module docstring


def fig8b(
    seeds: Sequence[int] = DEFAULT_SEEDS, pct_enabled: float = FIG8B_PCT_ENABLED
) -> FigureResult:
    """Figure 8(b): guideline map minT vs Work, nb_rows ∈ {1,2,4,8,16}."""
    values = (1, 2, 4, 8, 16)
    rows, steps = _guideline_rows(
        "nb_rows",
        values,
        lambda v: PatternParams(nb_rows=v, pct_enabled=pct_enabled),
        seeds,
    )
    chart = ascii_chart(
        {f"rows={v}": [(s.work, s.time_units) for s in steps[v]] for v in values},
        title="minT vs Work (frontier steps)",
        x_label="Work",
        y_label="minT",
    )
    return FigureResult(
        figure_id="Fig 8(b)",
        title=f"Guideline map: minT vs Work while nb_rows varies (%enabled={pct_enabled:g})",
        headers=["nb_rows", "Work", "minT", "strategy"],
        rows=rows,
        chart=chart,
        notes=[
            "more rows = smaller diameter = more parallelism: minT at high budget drops "
            "with nb_rows, while the minimum feasible Work stays similar",
        ],
    )


# ---------------------------------------------------------------------------
# Figure 9 — bounded resources: Db profile and the analytical model
# ---------------------------------------------------------------------------


def fig9a(
    gmpl_levels: Sequence[int] = (1, 2, 4, 6, 8, 12, 16, 20, 25, 30, 35),
    completions_per_level: int = 2000,
    seed: int = 0,
) -> FigureResult:
    """Figure 9(a): UnitTime (ms) vs Gmpl for the simulated database."""
    db = profile_database(
        DbParams(), gmpl_levels, completions_per_level, warmup=200, seed=seed
    )
    rows = [[g, t] for g, t in db.points]
    chart = ascii_chart(
        {"Db": [(g, t) for g, t in db.points]},
        title="UnitTime vs Gmpl",
        x_label="Gmpl",
        y_label="ms",
    )
    return FigureResult(
        figure_id="Fig 9(a)",
        title="Empirical Db function of the simulated database",
        headers=["Gmpl", "UnitTime_ms"],
        rows=rows,
        chart=chart,
        floatfmt=".2f",
        notes=[
            "expected shape: ~flat near 10ms at low load, then linear growth as the "
            "4 CPUs saturate (paper's figure spans ~10-100ms over Gmpl 0-35)",
        ],
    )


FIG9B_CODES = ("PCE0", "PCC0", "PCE80", "PC*100", "PSE40", "PSE80", "PSE100")
FIG9B_THROUGHPUT = 10.0
FIG9B_PCT_ENABLED = 25.0


def fig9b(
    seeds: Sequence[int] = DEFAULT_SEEDS,
    throughput_per_s: float = FIG9B_THROUGHPUT,
    n_instances: int = 300,
    warmup_instances: int = 60,
    profile_completions: int = 1500,
    db_function: DbFunction | None = None,
    measurement_seeds: Sequence[int] = (0, 1, 2),
) -> FigureResult:
    """Figure 9(b): predicted vs measured response time per strategy.

    Graph (a) of the paper's figure is the UnitTime from Eq. (6) at the
    strategy's Work, (b) the TimeInUnits from the guideline profile,
    (c) their product (predicted ms), (d) the measured ms from an
    open-system run at the target throughput (averaged over arrival
    seeds).  The Db function is profiled in *open* mode, which captures
    the queueing variance an open system actually sees.
    """
    params = PatternParams(nb_rows=4, pct_enabled=FIG9B_PCT_ENABLED)
    if db_function is None:
        db_function = profile_database(
            DbParams(),
            completions_per_level=profile_completions,
            warmup=150,
            mode="open",
        )
    results = evaluate_codes(params, FIG9B_CODES, seeds)
    report = tune(strategy_points(results), db_function, throughput_per_s)
    predictions = {p.code: p for p in report.predictions}

    pattern = generate_pattern(params.with_seed(seeds[0]))
    rows = []
    for code in FIG9B_CODES:
        prediction = predictions[code]
        measured_ms = None
        error_pct = None
        if prediction.feasible:
            measurements = [
                measure_open_system(
                    pattern,
                    code,
                    throughput_per_s,
                    n_instances=n_instances,
                    warmup_instances=warmup_instances,
                    seed=measurement_seed,
                )
                for measurement_seed in measurement_seeds
            ]
            measured_ms = sum(m.mean_ms for m in measurements) / len(measurements)
            predicted_ms = prediction.predicted_seconds * 1000.0
            error_pct = abs(predicted_ms - measured_ms) / measured_ms * 100.0
        rows.append(
            [
                code,
                prediction.work,
                prediction.time_units,
                prediction.unit_time_ms,
                prediction.predicted_seconds * 1000.0 if prediction.feasible else None,
                measured_ms,
                error_pct,
            ]
        )
    best = report.best
    notes = [
        f"throughput {throughput_per_s:g}/s; Eq.(6) max Work = {report.max_work:.1f} units",
        "'-' = saturated: Equation (6) has no solution at this Work",
    ]
    if best is not None:
        notes.append(
            f"model recommends {best.code} at {best.predicted_seconds * 1000.0:.0f} ms"
        )
    return FigureResult(
        figure_id="Fig 9(b)",
        title=f"Analytical model vs measurement (%enabled={FIG9B_PCT_ENABLED:g}, nb_rows=4)",
        headers=[
            "strategy",
            "Work",
            "TimeInUnits",
            "UnitTime_ms",
            "predicted_ms",
            "measured_ms",
            "err_%",
        ],
        rows=rows,
        notes=notes,
    )


# ---------------------------------------------------------------------------
# Ablations (beyond the paper's figures)
# ---------------------------------------------------------------------------


def ablation_halt_policy(seeds: Sequence[int] = DEFAULT_SEEDS) -> FigureResult:
    """Work impact of halting in-flight queries at instance completion."""
    params = PatternParams(nb_rows=4, pct_enabled=50)
    rows = []
    for code in ("PSE100", "PSC100", "PCE100"):
        cancel = evaluate_code(params, code, seeds, halt_policy="cancel")
        drain = evaluate_code(params, code, seeds, halt_policy="drain")
        rows.append(
            [code, cancel.mean_work, drain.mean_work, drain.mean_work - cancel.mean_work]
        )
    return FigureResult(
        figure_id="Ablation A1",
        title="Halt policy: cancel in-flight at completion vs drain",
        headers=["strategy", "Work(cancel)", "Work(drain)", "delta"],
        rows=rows,
        notes=[
            "the paper's semantics allows halting as soon as targets are stable; "
            "draining measures how much work that cutoff saves",
            "finding: the delta is ~0 on Table-1 patterns — the target closes "
            "every path, so nothing is left in flight when it stabilizes; the "
            "real work-savings channel is unneeded-pruning (ablation A2), not "
            "completion-time cancellation",
        ],
    )


def ablation_profile_mode(
    seeds: Sequence[int] = DEFAULT_SEEDS,
    throughput_per_s: float = FIG9B_THROUGHPUT,
    n_instances: int = 260,
    profile_completions: int = 1500,
) -> FigureResult:
    """Closed- vs open-loop Db profiling: analytical prediction accuracy.

    The paper determines Db empirically but does not say how the load was
    held; a closed loop (fixed Gmpl) misses the queueing variance an open
    system sees, so its predictions are systematically optimistic.  This
    ablation quantifies the gap on moderately loaded strategies.
    """
    params = PatternParams(nb_rows=4, pct_enabled=FIG9B_PCT_ENABLED)
    codes = ("PCE0", "PCC0", "PC*100")
    closed_db = profile_database(
        DbParams(), completions_per_level=profile_completions, warmup=150, mode="closed"
    )
    open_db = profile_database(
        DbParams(), completions_per_level=profile_completions, warmup=150, mode="open"
    )
    results = evaluate_codes(params, codes, seeds)
    points = strategy_points(results)
    closed_predictions = {p.code: p for p in tune(points, closed_db, throughput_per_s).predictions}
    open_predictions = {p.code: p for p in tune(points, open_db, throughput_per_s).predictions}

    pattern = generate_pattern(params.with_seed(seeds[0]))
    rows = []
    for code in codes:
        measurements = [
            measure_open_system(
                pattern, code, throughput_per_s, n_instances=n_instances, seed=s
            )
            for s in (0, 1, 2)
        ]
        measured_ms = sum(m.mean_ms for m in measurements) / len(measurements)
        closed_ms = closed_predictions[code].predicted_seconds * 1000.0
        open_ms = open_predictions[code].predicted_seconds * 1000.0
        rows.append(
            [
                code,
                measured_ms,
                closed_ms,
                abs(closed_ms - measured_ms) / measured_ms * 100.0,
                open_ms,
                abs(open_ms - measured_ms) / measured_ms * 100.0,
            ]
        )
    return FigureResult(
        figure_id="Ablation A3",
        title="Db profiling mode and analytical-model accuracy",
        headers=["strategy", "measured_ms", "closed_ms", "closed_err_%", "open_ms", "open_err_%"],
        rows=rows,
        notes=["open-loop profiling should cut the prediction error roughly in half"],
    )


def ablation_sharing(
    n_instances: int = 200,
    arrival_rate_per_s: float = 12.0,
    profile_counts: Sequence[int] = (1, 4, 16, 64),
    seed: int = 0,
) -> FigureResult:
    """Result sharing across instances with overlapping data (paper §6).

    A personalization flow whose queries are keyed by the customer profile
    runs under Poisson arrivals; customers repeat (``profiles`` distinct
    ones).  Sharing answers repeated queries from the shared result table,
    cutting database units — the effect shrinks as the population of
    distinct profiles grows.
    """
    from repro.api.config import ExecutionConfig
    from repro.api.service import DecisionService
    from repro.simdb.rng import derive_rng
    from repro.core.attribute import Attribute
    from repro.core.schema import DecisionFlowSchema
    from repro.core.tasks import QueryTask

    def personalization_schema() -> DecisionFlowSchema:
        return DecisionFlowSchema(
            [
                Attribute("customer"),
                Attribute(
                    "profile",
                    task=QueryTask(
                        "q_profile", ("customer",), lambda v: f"p:{v['customer']}", 3
                    ),
                ),
                Attribute(
                    "segment",
                    task=QueryTask(
                        "q_segment", ("profile",), lambda v: hashable_bucket(v["profile"]), 2
                    ),
                ),
                Attribute(
                    "offers",
                    task=QueryTask(
                        "q_offers", ("segment",), lambda v: f"offers:{v['segment']}", 4
                    ),
                ),
                # Catalog state is customer-independent: shared by everyone.
                Attribute(
                    "catalog", task=QueryTask("q_catalog", (), lambda v: "catalog", 2)
                ),
                Attribute(
                    "page",
                    task=QueryTask(
                        "q_page", ("offers", "catalog"), lambda v: (v["offers"], v["catalog"]), 1
                    ),
                    is_target=True,
                ),
            ],
            name="personalization",
        )

    def hashable_bucket(profile: str) -> str:
        return f"seg{sum(map(ord, profile)) % 5}"

    rows = []
    for profiles in profile_counts:
        per_mode: dict[bool, tuple[float, float]] = {}
        for share in (False, True):
            service = DecisionService(
                personalization_schema(),
                ExecutionConfig.from_code(
                    "PCE100", share_results=share, backend="bounded"
                ),
                params=DbParams(),
                seed=seed,
            )
            arrival_rng = derive_rng(seed, "sharing-arrivals", profiles)
            arrival_time = 0.0
            arrivals = []
            for _ in range(n_instances):
                arrival_time += arrival_rng.expovariate(arrival_rate_per_s / 1000.0)
                customer = f"c{arrival_rng.randrange(profiles)}"
                arrivals.append((arrival_time, {"customer": customer}))
            handles = service.submit_stream(arrivals)
            mean_ms = sum(h.metrics.elapsed for h in handles) / n_instances
            per_mode[share] = (service.database.total_units / n_instances, mean_ms)
        rows.append(
            [
                profiles,
                per_mode[False][0],
                per_mode[True][0],
                per_mode[False][1],
                per_mode[True][1],
            ]
        )
    return FigureResult(
        figure_id="Ablation A4",
        title=f"Result sharing under overlapping data ({n_instances} instances @ {arrival_rate_per_s:g}/s)",
        headers=["profiles", "units/inst", "units/inst(shared)", "ms", "ms(shared)"],
        rows=rows,
        notes=[
            "sharing cuts database units most when few distinct profiles recur; "
            "the always-identical catalog query is shared at every population size",
            "upper-bound effect: the table never expires entries, which is only "
            "sound under the paper's fixed-data assumption — production use "
            "needs TTL/invalidation, which would shrink these gains",
        ],
    )


def ablation_cancel_unneeded(seeds: Sequence[int] = DEFAULT_SEEDS) -> FigureResult:
    """Extension: cancelling in-flight queries detected unneeded (not in paper)."""
    from repro.core.strategy import Strategy
    from repro.bench.runner import run_pattern_once

    params = PatternParams(nb_rows=4, pct_enabled=25)
    rows = []
    for code in ("PSE100", "PSE50", "PSC100"):
        baseline_runs, cancel_runs = [], []
        for seed in seeds:
            pattern = generate_pattern(params.with_seed(seed))
            baseline = run_pattern_once(pattern, Strategy.parse(code))
            cancelling = run_pattern_once(
                pattern, Strategy.parse(code, cancel_unneeded=True)
            )
            baseline_runs.append(baseline)
            cancel_runs.append(cancelling)
        rows.append(
            [
                code,
                sum(m.work_units for m in baseline_runs) / len(baseline_runs),
                sum(m.work_units for m in cancel_runs) / len(cancel_runs),
                sum(m.elapsed for m in baseline_runs) / len(baseline_runs),
                sum(m.elapsed for m in cancel_runs) / len(cancel_runs),
            ]
        )
    return FigureResult(
        figure_id="Ablation A2",
        title="Cancelling unneeded in-flight queries (engine extension)",
        headers=["strategy", "Work", "Work(+cancel)", "T", "T(+cancel)"],
        rows=rows,
        notes=["response time must not regress; work should drop for speculative runs"],
    )
