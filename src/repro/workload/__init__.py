"""Synthetic workloads: Table-1 parameterized decision-flow patterns."""

from repro.workload.generator import GeneratedPattern, generate_pattern
from repro.workload.params import PatternParams, TABLE1_ROWS
from repro.workload.skeleton import SOURCE, TARGET, Skeleton, build_skeleton, node_name

__all__ = [
    "PatternParams",
    "TABLE1_ROWS",
    "Skeleton",
    "build_skeleton",
    "node_name",
    "SOURCE",
    "TARGET",
    "GeneratedPattern",
    "generate_pattern",
]
