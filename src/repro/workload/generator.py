"""Schema-pattern generator (section 5, "Experiment Environment").

The generator turns :class:`~repro.workload.params.PatternParams` into an
executable :class:`~repro.core.schema.DecisionFlowSchema` with a *known*
complete snapshot:

1. build the rows × columns dataflow skeleton, then add or delete data
   edges per ``%added_data_edges`` / ``%data_hop``;
2. fix every query's return payload (an integer in [0, 100)) — the
   paper's fixed-data assumption makes query results deterministic, so
   payloads may be chosen at generation time;
3. choose the set of *potential enablers* (``%enabler`` of attributes; the
   source is always one, mirroring Figure 1 where input attributes feed
   conditions);
4. pick exactly ``round(%enabled · nb_nodes)`` internal nodes to be
   enabled in the final snapshot, then walk nodes in topological order and
   **construct** each enabling condition — a conjunction or disjunction of
   1–4 comparison/null-test predicates over in-hop enablers — whose final
   truth value equals the chosen outcome.  (A predicate's final truth is
   computable at generation time because enabler payloads and outcomes
   are already fixed.)

Step 4 is what makes ``%enabled`` exact rather than statistical: the
generated schema's complete snapshot has precisely the requested fraction
of enabled internal nodes, which the generator verifies before returning.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.attribute import Attribute
from repro.core.conditions import TRUE, And, Condition, Literal, Or
from repro.core.predicates import Comparison, IsNull, Op
from repro.core.schema import DecisionFlowSchema
from repro.core.snapshot import CompleteSnapshot, evaluate_schema
from repro.core.state import AttributeState
from repro.core.tasks import QueryTask, constant
from repro.errors import GenerationError
from repro.simdb.rng import derive_rng
from repro.workload.params import PatternParams
from repro.workload.skeleton import SOURCE, TARGET, Skeleton, build_skeleton

__all__ = ["GeneratedPattern", "generate_pattern"]

_PAYLOAD_RANGE = 100  # payloads are integers in [0, _PAYLOAD_RANGE)


@dataclass
class GeneratedPattern:
    """A generated schema plus everything needed to execute and verify it."""

    schema: DecisionFlowSchema
    params: PatternParams
    source_values: dict[str, object]
    expected: CompleteSnapshot
    enablers: frozenset[str]
    ncols: int

    @property
    def enabled_internal_count(self) -> int:
        return sum(
            1
            for name in self.schema.internal_names
            if self.expected.states[name] is AttributeState.VALUE
        )

    def enabled_cost(self) -> int:
        """Total query cost of attributes enabled in the complete snapshot."""
        return self.expected.needed_cost()


def _hop_limit(pct: float, ncols: int) -> int:
    return max(1, round(pct / 100.0 * ncols))


def _adjust_data_edges(skeleton: Skeleton, params: PatternParams, rng: random.Random) -> None:
    """Add or delete data edges per %added_data_edges (negative = delete)."""
    count = round(abs(params.pct_added_data_edges) / 100.0 * len(skeleton.data_edges))
    if count == 0:
        return
    hop = _hop_limit(params.pct_data_hop, skeleton.ncols)
    if params.pct_added_data_edges > 0:
        internals = skeleton.internal_names
        candidates = [
            (a, b)
            for a in internals
            for b in internals
            if 0 < skeleton.column[b] - skeleton.column[a] <= hop
            and (a, b) not in skeleton.data_edges
        ]
        for edge in rng.sample(candidates, min(count, len(candidates))):
            skeleton.data_edges.add(edge)
    else:
        # Only consecutive-in-row internal edges are candidates for deletion:
        # removing source/target edges would change the pattern's endpoints.
        removable = sorted(
            (a, b)
            for a, b in skeleton.data_edges
            if a != SOURCE and b != TARGET
        )
        for edge in rng.sample(removable, min(count, len(removable))):
            skeleton.data_edges.remove(edge)


def _predicate(
    enabler: str,
    enabler_payload: int,
    enabler_enabled: bool,
    want_true: bool,
    rng: random.Random,
) -> Condition:
    """A comparison/null-test over *enabler* with a known final truth value.

    The enabler's final state (VALUE with its payload, or DISABLED = ⊥)
    is known at generation time; pick an operator/threshold accordingly.
    Comparisons on ⊥ are false; IsNull on ⊥ is true.
    """
    if enabler_enabled:
        value = enabler_payload
        if want_true:
            if rng.random() < 0.5:
                return Comparison(enabler, Op.GE, rng.randint(0, value))
            return Comparison(enabler, Op.LE, rng.randint(value, _PAYLOAD_RANGE - 1))
        if rng.random() < 0.5:
            return Comparison(enabler, Op.GT, rng.randint(value, _PAYLOAD_RANGE - 1))
        return IsNull(enabler)
    if want_true:
        return IsNull(enabler)
    return Comparison(enabler, Op.GE, rng.randint(0, _PAYLOAD_RANGE - 1))


def _build_condition(
    node: str,
    candidates: list[str],
    payloads: dict[str, int],
    outcomes: dict[str, bool],
    want_enabled: bool,
    params: PatternParams,
    rng: random.Random,
) -> Condition:
    """An enabling condition over *candidates* with final truth *want_enabled*."""
    upper = min(params.max_pred, len(candidates))
    lower = min(params.min_pred, upper)
    k = rng.randint(lower, upper) if upper > 0 else 0
    if k == 0:
        return Literal(want_enabled)
    chosen = rng.sample(candidates, k)
    conjunction = rng.random() < 0.5

    if conjunction:
        # AND: all true for a true outcome; otherwise force >= 1 false.
        truths = [True] * k if want_enabled else _with_forced(k, False, rng)
    else:
        # OR: all false for a false outcome; otherwise force >= 1 true.
        truths = [False] * k if not want_enabled else _with_forced(k, True, rng)

    predicates = [
        _predicate(enabler, payloads[enabler], outcomes[enabler], truth, rng)
        for enabler, truth in zip(chosen, truths)
    ]
    if k == 1:
        return predicates[0]
    return And(*predicates) if conjunction else Or(*predicates)


def _with_forced(k: int, forced: bool, rng: random.Random) -> list[bool]:
    """k random booleans with at least one equal to *forced*."""
    truths = [rng.random() < 0.5 for _ in range(k)]
    truths[rng.randrange(k)] = forced
    return truths


def generate_pattern(params: PatternParams) -> GeneratedPattern:
    """Generate a schema pattern; deterministic in ``params`` (incl. seed)."""
    structure_rng = derive_rng(params.seed, "structure", params.nb_nodes, params.nb_rows)
    payload_rng = derive_rng(params.seed, "payloads")
    cost_rng = derive_rng(params.seed, "costs")
    enabler_rng = derive_rng(params.seed, "enablers")
    outcome_rng = derive_rng(params.seed, "outcomes", params.pct_enabled)
    condition_rng = derive_rng(params.seed, "conditions", params.pct_enabled)

    skeleton = build_skeleton(params.nb_nodes, params.nb_rows)
    _adjust_data_edges(skeleton, params, structure_rng)
    internals = skeleton.internal_names

    payloads = {name: payload_rng.randint(0, _PAYLOAD_RANGE - 1) for name in [SOURCE, *internals, TARGET]}
    costs = {name: cost_rng.randint(params.min_cost, params.max_cost) for name in [*internals, TARGET]}

    # Potential enablers: %enabler of the internal nodes, plus the source.
    enabler_count = round(params.pct_enabler / 100.0 * len(internals))
    enablers = set(enabler_rng.sample(internals, min(enabler_count, len(internals))))
    enablers.add(SOURCE)

    # Exactly round(%enabled · nb_nodes) internal nodes end up enabled.
    enabled_count = round(params.pct_enabled / 100.0 * len(internals))
    enabled_set = set(outcome_rng.sample(internals, enabled_count))
    outcomes: dict[str, bool] = {SOURCE: True}
    for name in internals:
        outcomes[name] = name in enabled_set
    outcomes[TARGET] = True

    hop = _hop_limit(params.pct_enabling_hop, skeleton.ncols)
    enablers_by_column = sorted(enablers, key=lambda e: (skeleton.column[e], e))

    attributes: list[Attribute] = [Attribute(SOURCE, task=None)]
    for name in internals:
        col = skeleton.column[name]
        candidates = [
            e for e in enablers_by_column if 0 < col - skeleton.column[e] <= hop
        ]
        condition = _build_condition(
            name, candidates, payloads, outcomes, outcomes[name], params, condition_rng
        )
        task = QueryTask(
            name=f"q_{name}",
            inputs=skeleton.data_inputs(name),
            fn=constant(payloads[name]),
            cost=costs[name],
            description=f"synthetic query for {name}",
        )
        attributes.append(Attribute(name, task=task, condition=condition))

    target_task = QueryTask(
        name=f"q_{TARGET}",
        inputs=skeleton.data_inputs(TARGET),
        fn=constant(payloads[TARGET]),
        cost=costs[TARGET],
        description="synthetic target query",
    )
    attributes.append(Attribute(TARGET, task=target_task, condition=TRUE, is_target=True))

    schema = DecisionFlowSchema(
        attributes,
        name=f"pattern(n={params.nb_nodes},r={params.nb_rows},"
        f"e={params.pct_enabled:g},seed={params.seed})",
    )
    source_values = {SOURCE: payloads[SOURCE]}
    expected = evaluate_schema(schema, source_values)

    # The construction guarantees the snapshot matches the chosen outcomes;
    # verify to catch generator bugs immediately.
    for name in internals:
        actual = expected.states[name] is AttributeState.VALUE
        if actual != outcomes[name]:
            raise GenerationError(
                f"engineered outcome mismatch at {name}: wanted "
                f"{'enabled' if outcomes[name] else 'disabled'}, snapshot disagrees"
            )

    return GeneratedPattern(
        schema=schema,
        params=params,
        source_values=source_values,
        expected=expected,
        enablers=frozenset(enablers),
        ncols=skeleton.ncols,
    )
