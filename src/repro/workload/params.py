"""Workload-generator parameters (Table 1 of the paper).

One :class:`PatternParams` instance describes a decision-flow *pattern*:
the experiments of section 5 sweep ``nb_rows`` (which controls the
schema's diameter and hence its potential parallelism) and ``%enabled``
(the fraction of enabling conditions that are true at the end of an
execution, which controls how much work can be saved).

The database-side rows of Table 1 live in
:class:`repro.simdb.database.DbParams`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import GenerationError

__all__ = ["PatternParams", "TABLE1_ROWS"]


@dataclass(frozen=True)
class PatternParams:
    """Schema-pattern parameters, with Table 1's defaults/ranges."""

    nb_nodes: int = 64            # number of internal nodes
    nb_rows: int = 4              # number of schema rows, in [1, 16]
    pct_enabled: float = 50.0     # % of internal nodes enabled at the end, [10, 100]
    pct_enabler: float = 50.0     # % of potential enablers
    pct_enabling_hop: float = 50.0  # max enabling-edge hop, % of total columns
    min_pred: int = 1             # min predicates per enabling condition
    max_pred: int = 4             # max predicates per enabling condition
    pct_added_data_edges: float = 0.0  # % data edges added(+)/deleted(-), [-25, 25]
    pct_data_hop: float = 50.0    # max data-edge hop, % of total columns
    min_cost: int = 1             # module (query) cost, units of processing
    max_cost: int = 5
    seed: int = 0

    def __post_init__(self):
        if self.nb_nodes < 1:
            raise GenerationError(f"nb_nodes must be >= 1, got {self.nb_nodes}")
        if not 1 <= self.nb_rows <= self.nb_nodes:
            raise GenerationError(
                f"nb_rows must be in [1, nb_nodes={self.nb_nodes}], got {self.nb_rows}"
            )
        if not 0.0 <= self.pct_enabled <= 100.0:
            raise GenerationError(f"pct_enabled out of [0, 100]: {self.pct_enabled}")
        if not 0.0 <= self.pct_enabler <= 100.0:
            raise GenerationError(f"pct_enabler out of [0, 100]: {self.pct_enabler}")
        if not 0.0 <= self.pct_enabling_hop <= 100.0:
            raise GenerationError(f"pct_enabling_hop out of [0, 100]: {self.pct_enabling_hop}")
        if not 0.0 <= self.pct_data_hop <= 100.0:
            raise GenerationError(f"pct_data_hop out of [0, 100]: {self.pct_data_hop}")
        if not 0 <= self.min_pred <= self.max_pred:
            raise GenerationError(
                f"need 0 <= min_pred <= max_pred, got [{self.min_pred}, {self.max_pred}]"
            )
        if not -100.0 <= self.pct_added_data_edges <= 100.0:
            raise GenerationError(
                f"pct_added_data_edges out of [-100, 100]: {self.pct_added_data_edges}"
            )
        if not 1 <= self.min_cost <= self.max_cost:
            raise GenerationError(
                f"need 1 <= min_cost <= max_cost, got [{self.min_cost}, {self.max_cost}]"
            )

    def with_seed(self, seed: int) -> "PatternParams":
        return replace(self, seed=seed)

    def replace(self, **changes) -> "PatternParams":
        return replace(self, **changes)


#: Table 1 as printable rows: (parameter, range/default, description).
TABLE1_ROWS = (
    ("nb_nodes", "64", "# of internal nodes"),
    ("nb_rows", "[1,16]", "# of schema rows"),
    ("%enabled", "[10,100]", "% of enabled nodes"),
    ("%enabler", "50", "% of potential enablers"),
    ("%enabling_hop", "50", "max enabling edge hop (as % of total # of columns)"),
    ("Min_pred", "1", "min # of predicates per enabling condition"),
    ("Max_pred", "4", "max # of predicates per enabling condition"),
    ("%added_data_edges", "[-25,+25]", "% of data edges added to skeleton"),
    ("%data_hop", "50", "max data edge hop (as % of total # of columns)"),
    ("module_cost", "[1,5]", "units of cost for executing a module"),
    ("num_CPUs", "4", "# of CPUs in the database"),
    ("num_disks", "10", "# of disks in the database"),
    ("unit_CPU_cost", "1", "# of units of CPU per execution unit"),
    ("unit_IO_cost", "1", "# of IO pages per unit execution"),
    ("%IO_hit", "50", "probability of IO page hit in buffer"),
    ("IO_delay", "5", "IO delay in msecs."),
)
