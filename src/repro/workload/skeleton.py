"""Dataflow skeletons: the rows × columns grid underlying schema patterns.

Section 5: "the skeleton contains one source attribute, one target
attribute, and nb_nodes internal attributes... the source attribute is an
input attribute of the first nodes of all the rows; each internal node is
an input attribute of its successor in the same row; the last nodes of all
the rows are inputs of the target attribute."  Varying ``nb_rows`` for
fixed ``nb_nodes`` varies the schema diameter nb_nodes/nb_rows, and hence
the parallelism available.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SOURCE", "TARGET", "Skeleton", "build_skeleton", "node_name"]

SOURCE = "src"
TARGET = "tgt"


def node_name(row: int, col: int) -> str:
    """Name of the internal node at (row, col), both 0-based."""
    return f"n{row}_{col}"


@dataclass
class Skeleton:
    """A dataflow skeleton: the grid plus its data edges."""

    nb_nodes: int
    nb_rows: int
    rows: list[list[str]]
    column: dict[str, int]          # SOURCE → 0, internal → 1.., TARGET → ncols+1
    data_edges: set[tuple[str, str]] = field(default_factory=set)

    @property
    def ncols(self) -> int:
        """Number of internal columns (the paper's nb_nodes/nb_rows diameter)."""
        return max(len(row) for row in self.rows)

    @property
    def internal_names(self) -> list[str]:
        """Internal node names in (column, row) order — a topological order."""
        ordered = []
        for col in range(self.ncols):
            for row in self.rows:
                if col < len(row):
                    ordered.append(row[col])
        return ordered

    def data_inputs(self, name: str) -> list[str]:
        """Data inputs of *name*, deterministically ordered."""
        parents = [a for a, b in self.data_edges if b == name]
        parents.sort(key=lambda a: (self.column[a], a))
        return parents


def build_skeleton(nb_nodes: int, nb_rows: int) -> Skeleton:
    """Build the skeleton grid for ``nb_nodes`` internal nodes in ``nb_rows`` rows.

    When ``nb_rows`` does not divide ``nb_nodes`` the nodes spread as
    evenly as possible (row lengths differ by at most one), so sweeps like
    Figure 5(b)'s nb_rows ∈ 2..8 over 64 nodes are well defined.
    """
    base, extra = divmod(nb_nodes, nb_rows)
    rows: list[list[str]] = []
    for row_index in range(nb_rows):
        length = base + (1 if row_index < extra else 0)
        rows.append([node_name(row_index, col) for col in range(length)])

    column: dict[str, int] = {SOURCE: 0}
    for row in rows:
        for col, name in enumerate(row):
            column[name] = col + 1
    ncols = max(len(row) for row in rows)
    column[TARGET] = ncols + 1

    skeleton = Skeleton(nb_nodes=nb_nodes, nb_rows=nb_rows, rows=rows, column=column)
    for row in rows:
        if not row:
            continue
        skeleton.data_edges.add((SOURCE, row[0]))
        for left, right in zip(row, row[1:]):
            skeleton.data_edges.add((left, right))
        skeleton.data_edges.add((row[-1], TARGET))
    return skeleton
