"""Deterministic random-number streams.

Every stochastic component (workload generator, buffer-hit draws, arrival
processes) takes an explicit stream derived from a master seed and a path
of string keys, so experiments are reproducible and components do not
perturb each other's draws.  String seeding in CPython hashes with SHA-512,
which is stable across runs and versions.
"""

from __future__ import annotations

import random

__all__ = ["derive_rng", "exponential"]


def derive_rng(seed: int, *keys: object) -> random.Random:
    """A :class:`random.Random` stream for (seed, keys), stable across runs."""
    path = "/".join(str(key) for key in keys)
    return random.Random(f"{seed}#{path}")


def exponential(rng: random.Random, rate: float) -> float:
    """An exponential inter-arrival sample with the given rate (per time unit)."""
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    return rng.expovariate(rate)
