"""Deterministic discrete-event simulation kernel.

This replaces CSIM 18, the commercial simulation library the paper used to
simulate the external database server.  It is a classic event calendar:
callbacks scheduled at simulated times, executed in (time, sequence) order,
so simultaneous events run in scheduling order and every run is exactly
reproducible.

Three properties matter for the coalesced database kernels, which cancel
and reschedule completion events instead of walking unit by unit:

* :attr:`Simulation.pending` is O(1) — a live counter maintained on
  schedule/cancel/fire instead of a scan of the calendar;
* cancelled events are *compacted* away once they dominate the calendar,
  so a workload that reschedules most of its events keeps the calendar
  (and every insert/pop) proportional to the live event count;
* events carry an explicit *priority* band breaking same-time ties ahead
  of the scheduling sequence.  A per-unit kernel's tie order at a shared
  instant is an artifact of when each chain allocated its next event; a
  coalesced kernel schedules a query's single completion far in advance
  and could never reproduce that accident.  Priorities replace it with a
  defined order — database events sort by query submission order in band
  1, between plain events (band 0) and zero-delay deliveries (band 2) —
  that both kernels realize identically.

Instant-bucketed calendar
-------------------------

Large sweeps concentrate thousands of events on a handful of instants
(every instance starts at t=0; equal-cost queries complete together), so
a heap of *events* pays O(log n-events) per push/pop for a calendar whose
distinct instants number in the dozens.  The calendar here is a heap of
``(time, priority-band)`` *bucket keys* instead; each key maps to a
bucket holding its events in firing order.  Scheduling into an existing
instant is an O(1) append; popping the frontier bucket hands a whole
``(time, band)`` run to :meth:`Simulation.step_instant` without a single
re-heapify.  Buckets keep their events sorted by ``(priority, seq)``
lazily: appends arrive in ``seq`` order, so a bucket only sorts when an
out-of-band-order insert (a band-1 completion re-armed after a
later-submitted query's) actually lands in it.

Instant pooling
---------------

Dispatching each event through :meth:`Simulation.step` pays the full
per-event loop: a head peek, a bucket advance, a clock write, and a
priority save/restore.  :meth:`Simulation.step_instant` instead pops
*every* live event sharing the ``(time, priority band)`` frontier — the
frontier bucket, verbatim — in one pass and hands the run to a
registered *batch consumer* (see :meth:`Simulation.set_batch_consumer`),
which fires them through :meth:`Simulation.fire_pooled` — in exactly the
order :meth:`step` would have — and may layer cross-event optimizations
on top.
The contract keeps pooling invisible: a consumer must stop early (and
return how many events it consumed) whenever a freshly scheduled event
sorts before the rest of the pool, because under per-event stepping that
event would have preempted them; the kernel then re-queues the remainder.
With no consumer registered, ``step_instant`` falls back to ``step``.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from repro.errors import SimulationError

__all__ = ["Event", "Simulation"]

#: Compaction thresholds: sweep the buckets once more than
#: ``_COMPACT_MIN_CANCELLED`` events are dead *and* dead events exceed
#: ``_COMPACT_LIVE_FRACTION`` of the live count.  Small enough to bound
#: memory on reschedule-heavy runs, large enough to amortize the rebuild
#: (a compaction is O(live + dead); firing between compactions skips dead
#: events in O(1) each, so rebuilding below the fraction would cost more
#: than the lazy skips it saves).
_COMPACT_MIN_CANCELLED = 64
_COMPACT_LIVE_FRACTION = 1.0


#: Default event priority: band 0, no sub-rank — ties resolve by seq.
DEFAULT_PRIORITY = (0, 0)


class Event:
    """A scheduled callback; cancellable until it fires."""

    __slots__ = ("time", "priority", "seq", "fn", "cancelled", "fired", "popped", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[[], None],
        sim: "Simulation | None" = None,
        priority: tuple[int, int] = DEFAULT_PRIORITY,
    ):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.cancelled = False
        self.fired = False
        #: True while the event sits in a popped instant pool rather than
        #: the calendar — cancellations then must not touch the
        #: dead-in-queue accounting (the event is not in a bucket).
        self.popped = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._on_cancel(self)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (other.time, other.priority, other.seq)

    def __repr__(self) -> str:
        flag = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6g} seq={self.seq}{flag}>"


class _Bucket:
    """Events of one ``(time, priority band)`` instant, in firing order.

    ``items[pos:]`` is the unconsumed tail; ``pos`` advances as events
    fire so consumption never shifts the list.  ``dirty`` marks an
    out-of-order append — the tail re-sorts (by full event order; every
    member shares the bucket time) only when actually read.
    """

    __slots__ = ("items", "pos", "dirty")

    def __init__(self):
        self.items: list[Event] = []
        self.pos = 0
        self.dirty = False


class Simulation:
    """An event calendar with a monotone clock.

    The time base is abstract: the decision-flow experiments use
    *units of processing* on the ideal database and *milliseconds* on the
    simulated database.  Nothing in the kernel cares.
    """

    def __init__(self):
        self.now: float = 0.0
        #: bucket key heap + key→bucket map; keys are (time, band).  A key
        #: may outlive its bucket (compaction deletes drained buckets
        #: without touching the heap) — reads skip stale keys lazily.
        self._heap: list[tuple[float, int]] = []
        self._buckets: dict[tuple[float, int], _Bucket] = {}
        self._seq = itertools.count()
        self._events_executed = 0
        self._live = 0
        self._dead_in_queue = 0
        self._cancelled_compactions = 0
        #: bumped on every insert — lets fire_pooled skip its preemption
        #: peek entirely while no callback has scheduled anything new.
        self._sched_marker = 0
        self._batch_consumer: Callable[[list[Event]], int | None] | None = None
        #: priority of the event whose callback is currently running
        #: (None outside a dispatch) — lets re-planning code decide whether
        #: a same-time event with another priority has already fired.
        self.executing_priority: tuple[int, int] | None = None

    def schedule(
        self, delay: float, fn: Callable[[], None], priority: tuple[int, int] = DEFAULT_PRIORITY
    ) -> Event:
        """Schedule *fn* to run *delay* time from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, priority)

    def schedule_at(
        self, time: float, fn: Callable[[], None], priority: tuple[int, int] = DEFAULT_PRIORITY
    ) -> Event:
        """Schedule *fn* at an absolute simulated time.

        Same-time events fire in (priority, scheduling order).  The
        database kernels pass band-1 priorities keyed by query submission
        order so unit boundaries and completions interleave identically
        under the per-unit and coalesced kernels.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} (now is {self.now})"
            )
        event = Event(time, next(self._seq), fn, self, priority)
        key = (time, priority[0])
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = _Bucket()
            self._buckets[key] = bucket
            heapq.heappush(self._heap, key)
            bucket.items.append(event)
        else:
            items = bucket.items
            # seq is globally monotone, so an append is in order unless
            # its in-band sub-priority undercuts the current tail.
            if items and not bucket.dirty and priority < items[-1].priority:
                bucket.dirty = True
            items.append(event)
        self._live += 1
        self._sched_marker += 1
        return event

    def _on_cancel(self, event: Event) -> None:
        self._live -= 1
        if event.popped:
            # The event sits in a consumer's instant pool, not a bucket;
            # it either fires as a no-op or re-enters the calendar
            # (counted dead at that point).  Counting it here would let a
            # concurrent _compact zero away a debt the buckets never held.
            return
        self._dead_in_queue += 1
        if (
            self._dead_in_queue > _COMPACT_MIN_CANCELLED
            and self._dead_in_queue > self._live * _COMPACT_LIVE_FRACTION
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled events from every bucket tail.

        Reached only once dead events pass the live-fraction threshold in
        :meth:`_on_cancel`; a workload that cancels below it never pays a
        rebuild (the dead events drain lazily as reads skip them).
        Buckets left empty are dropped from the map; their heap keys go
        stale and are skipped on the next frontier read.
        """
        buckets = self._buckets
        for key in list(buckets):
            bucket = buckets[key]
            live = [event for event in bucket.items[bucket.pos:] if not event.cancelled]
            if live:
                bucket.items = live
                bucket.pos = 0
            else:
                del buckets[key]
        self._dead_in_queue = 0
        self._cancelled_compactions += 1

    def _head(self) -> tuple[Event, _Bucket, tuple[float, int]] | None:
        """The next live event with its bucket, or None.

        Pops stale heap keys, drops drained buckets, sorts a dirty tail,
        and advances past cancelled events (settling their dead-in-queue
        debt) — so on return ``heap[0]`` is exactly the returned bucket's
        key and ``bucket.items[bucket.pos]`` the event ``step`` would
        fire.
        """
        heap = self._heap
        buckets = self._buckets
        while heap:
            key = heap[0]
            bucket = buckets.get(key)
            if bucket is None:
                heapq.heappop(heap)
                continue
            items = bucket.items
            pos = bucket.pos
            if bucket.dirty:
                tail = items[pos:]
                tail.sort()
                items[pos:] = tail
                bucket.dirty = False
            while pos < len(items) and items[pos].cancelled:
                pos += 1
                self._dead_in_queue -= 1
            bucket.pos = pos
            if pos >= len(items):
                del buckets[key]
                heapq.heappop(heap)
                continue
            return items[pos], bucket, key
        return None

    def _queued_events(self) -> int:
        """Events currently held in buckets, dead included (test hook)."""
        return sum(len(b.items) - b.pos for b in self._buckets.values())

    def fire_pooled(self, events: list[Event]) -> int:
        """Fire an instant pool in order; the consumer work loop.

        Each live event dispatches exactly as :meth:`step` would (fired
        flag, counters, :attr:`executing_priority` visible to its
        callback), with a head-of-calendar preemption check between
        events — but the per-event costs are hoisted out of the loop:
        one priority-context restore for the whole pool, and a preemption
        test that runs only when a callback actually scheduled something
        (tracked by the insert marker; the pool was the maximal frontier,
        so everything already queued sorts after it — only a *new* event
        can preempt, and ``schedule_at`` refuses the past, so only by
        priority/seq at the pool time).  Events cancelled after being
        popped (an earlier pool member may cancel a later one) are
        skipped; their accounting was already settled by
        :meth:`_on_cancel`.  Returns the number of pool slots consumed;
        batch consumers delegate to this and layer their own group work
        around it.
        """
        count = len(events)
        last = count - 1
        previous = self.executing_priority
        marker = self._sched_marker
        try:
            for index, event in enumerate(events):
                if not event.cancelled:
                    event.fired = True
                    self._live -= 1
                    self._events_executed += 1
                    self.executing_priority = event.priority
                    event.fn()
                if index < last and self._sched_marker != marker:
                    marker = self._sched_marker
                    found = self._head()
                    if found is not None:
                        head = found[0]
                        nxt = events[index + 1]
                        if head.time == nxt.time:
                            head_priority = head.priority
                            nxt_priority = nxt.priority
                            if head_priority < nxt_priority or (
                                head_priority == nxt_priority and head.seq < nxt.seq
                            ):
                                return index + 1
        finally:
            self.executing_priority = previous
        return count

    def step(self) -> bool:
        """Run the next pending event.  Returns False when none remain."""
        found = self._head()
        if found is None:
            return False
        event, bucket, _key = found
        bucket.pos += 1
        self.now = event.time
        event.fired = True
        self._live -= 1
        self._events_executed += 1
        previous = self.executing_priority
        self.executing_priority = event.priority
        try:
            event.fn()
        finally:
            self.executing_priority = previous
        return True

    # -- instant pooling -----------------------------------------------------

    def set_batch_consumer(
        self, consumer: Callable[[list[Event]], int | None] | None
    ) -> None:
        """Register the batch consumer :meth:`step_instant` hands pools to.

        The consumer receives the popped frontier pool (same time, same
        priority band, in firing order) and must dispatch it through
        :meth:`fire_pooled` (usually with its own group-level work
        around that call).  It returns the number of events it
        consumed — anything less than the pool size (because a callback
        scheduled an event that sorts before the remainder, which
        per-event stepping would fire first) makes the kernel re-queue
        the rest.  Returning ``None`` means the whole pool was consumed.
        Pass ``None`` to deregister; registering over a *different* live
        consumer raises (two drains would race for the same calendar).
        """
        if (
            consumer is not None
            and self._batch_consumer is not None
            and self._batch_consumer != consumer  # == covers bound methods
        ):
            raise SimulationError(
                "a batch consumer is already registered; clear it first"
            )
        self._batch_consumer = consumer

    def step_instant(self) -> bool:
        """Run every pending event at the ``(time, priority band)`` frontier.

        The frontier is exactly the head bucket: detach it whole, settle
        the dead-in-queue debt of its cancelled members, and hand the
        live run to the registered batch consumer — no per-event heap
        traffic at all.  Falls back to a single per-event :meth:`step`
        when no consumer is registered.  Returns False when the calendar
        is empty.
        """
        consumer = self._batch_consumer
        if consumer is None:
            return self.step()
        found = self._head()
        if found is None:
            return False
        head, bucket, key = found
        tail = bucket.items[bucket.pos:]
        batch = []
        for event in tail:
            if event.cancelled:
                self._dead_in_queue -= 1
            else:
                event.popped = True
                batch.append(event)
        del self._buckets[key]
        heapq.heappop(self._heap)  # _head left this bucket's key on top
        self.now = head.time
        try:
            consumed = consumer(batch)
        except BaseException:
            # A callback raised mid-pool: per-event stepping would leave
            # the unfired siblings queued, so restore them before
            # propagating (callers may recover and run() again).
            self._requeue_unfired(batch)
            raise
        if consumed is not None and consumed < len(batch):
            # A callback scheduled work that preempts the rest of the
            # pool; hand the unfired remainder back to the calendar.
            self._requeue_unfired(batch[consumed:])
        return True

    def _requeue_unfired(self, events: list[Event]) -> None:
        """Return popped-but-unfired pool members to the calendar."""
        buckets = self._buckets
        for event in events:
            if event.fired:
                continue
            event.popped = False
            if event.cancelled:
                self._dead_in_queue += 1
            key = (event.time, event.priority[0])
            bucket = buckets.get(key)
            if bucket is None:
                bucket = _Bucket()
                buckets[key] = bucket
                heapq.heappush(self._heap, key)
                bucket.items.append(event)
            else:
                items = bucket.items
                # The bucket may hold events scheduled mid-pool, whose
                # seqs are newer than the requeued remainder's; a full
                # (priority, seq) comparison decides whether the tail
                # needs a re-sort.
                if (
                    items
                    and not bucket.dirty
                    and (event.priority, event.seq)
                    < (items[-1].priority, items[-1].seq)
                ):
                    bucket.dirty = True
                items.append(event)

    def run(self, until: float | None = None) -> None:
        """Run events until the calendar drains or the clock passes *until*."""
        pooled = self._batch_consumer is not None
        while True:
            found = self._head()
            if found is None:
                break
            if until is not None and found[0].time > until:
                self.now = until
                return
            if pooled:
                self.step_instant()
            else:
                self.step()
        if until is not None and until > self.now:
            self.now = until

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still scheduled (O(1))."""
        return self._live

    @property
    def events_executed(self) -> int:
        return self._events_executed

    @property
    def cancelled_compactions(self) -> int:
        """How many times cancelled events forced a calendar rebuild."""
        return self._cancelled_compactions

    def __repr__(self) -> str:
        return f"<Simulation now={self.now:.6g} pending={self.pending}>"
