"""Deterministic discrete-event simulation kernel.

This replaces CSIM 18, the commercial simulation library the paper used to
simulate the external database server.  It is a classic event calendar:
callbacks scheduled at simulated times, executed in (time, sequence) order,
so simultaneous events run in scheduling order and every run is exactly
reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from repro.errors import SimulationError

__all__ = ["Event", "Simulation"]


class Event:
    """A scheduled callback; cancellable until it fires."""

    __slots__ = ("time", "seq", "fn", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        flag = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6g} seq={self.seq}{flag}>"


class Simulation:
    """An event calendar with a monotone clock.

    The time base is abstract: the decision-flow experiments use
    *units of processing* on the ideal database and *milliseconds* on the
    simulated database.  Nothing in the kernel cares.
    """

    def __init__(self):
        self.now: float = 0.0
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._events_executed = 0

    def schedule(self, delay: float, fn: Callable[[], None]) -> Event:
        """Schedule *fn* to run *delay* time from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn)

    def schedule_at(self, time: float, fn: Callable[[], None]) -> Event:
        """Schedule *fn* at an absolute simulated time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} (now is {self.now})"
            )
        event = Event(time, next(self._seq), fn)
        heapq.heappush(self._queue, event)
        return event

    def step(self) -> bool:
        """Run the next pending event.  Returns False when none remain."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            self._events_executed += 1
            event.fn()
            return True
        return False

    def run(self, until: float | None = None) -> None:
        """Run events until the calendar drains or the clock passes *until*."""
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and head.time > until:
                self.now = until
                return
            self.step()
        if until is not None and until > self.now:
            self.now = until

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still scheduled."""
        return sum(1 for event in self._queue if not event.cancelled)

    @property
    def events_executed(self) -> int:
        return self._events_executed

    def __repr__(self) -> str:
        return f"<Simulation now={self.now:.6g} pending={self.pending}>"
