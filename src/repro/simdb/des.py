"""Deterministic discrete-event simulation kernel.

This replaces CSIM 18, the commercial simulation library the paper used to
simulate the external database server.  It is a classic event calendar:
callbacks scheduled at simulated times, executed in (time, sequence) order,
so simultaneous events run in scheduling order and every run is exactly
reproducible.

Three properties matter for the coalesced database kernels, which cancel
and reschedule completion events instead of walking unit by unit:

* :attr:`Simulation.pending` is O(1) — a live counter maintained on
  schedule/cancel/fire instead of a scan of the calendar;
* cancelled events are *compacted* away once they dominate the calendar,
  so a workload that reschedules most of its events keeps the heap (and
  every push/pop) proportional to the live event count;
* events carry an explicit *priority* band breaking same-time ties ahead
  of the scheduling sequence.  A per-unit kernel's tie order at a shared
  instant is an artifact of when each chain allocated its next event; a
  coalesced kernel schedules a query's single completion far in advance
  and could never reproduce that accident.  Priorities replace it with a
  defined order — database events sort by query submission order in band
  1, between plain events (band 0) and zero-delay deliveries (band 2) —
  that both kernels realize identically.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from repro.errors import SimulationError

__all__ = ["Event", "Simulation"]

#: Compaction threshold: rebuild the heap once more than this many events
#: are dead *and* they outnumber the live ones.  Small enough to bound
#: memory on reschedule-heavy runs, large enough to amortize the rebuild.
_COMPACT_MIN_CANCELLED = 64


#: Default event priority: band 0, no sub-rank — ties resolve by seq.
DEFAULT_PRIORITY = (0, 0)


class Event:
    """A scheduled callback; cancellable until it fires."""

    __slots__ = ("time", "priority", "seq", "fn", "cancelled", "fired", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[[], None],
        sim: "Simulation | None" = None,
        priority: tuple[int, int] = DEFAULT_PRIORITY,
    ):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.cancelled = False
        self.fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._on_cancel()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (other.time, other.priority, other.seq)

    def __repr__(self) -> str:
        flag = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6g} seq={self.seq}{flag}>"


class Simulation:
    """An event calendar with a monotone clock.

    The time base is abstract: the decision-flow experiments use
    *units of processing* on the ideal database and *milliseconds* on the
    simulated database.  Nothing in the kernel cares.
    """

    def __init__(self):
        self.now: float = 0.0
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._events_executed = 0
        self._live = 0
        self._dead_in_queue = 0
        #: priority of the event whose callback is currently running
        #: (None outside a dispatch) — lets re-planning code decide whether
        #: a same-time event with another priority has already fired.
        self.executing_priority: tuple[int, int] | None = None

    def schedule(
        self, delay: float, fn: Callable[[], None], priority: tuple[int, int] = DEFAULT_PRIORITY
    ) -> Event:
        """Schedule *fn* to run *delay* time from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, priority)

    def schedule_at(
        self, time: float, fn: Callable[[], None], priority: tuple[int, int] = DEFAULT_PRIORITY
    ) -> Event:
        """Schedule *fn* at an absolute simulated time.

        Same-time events fire in (priority, scheduling order).  The
        database kernels pass band-1 priorities keyed by query submission
        order so unit boundaries and completions interleave identically
        under the per-unit and coalesced kernels.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} (now is {self.now})"
            )
        event = Event(time, next(self._seq), fn, self, priority)
        heapq.heappush(self._queue, event)
        self._live += 1
        return event

    def _on_cancel(self) -> None:
        self._live -= 1
        self._dead_in_queue += 1
        if (
            self._dead_in_queue > _COMPACT_MIN_CANCELLED
            and self._dead_in_queue > self._live
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled events and re-heapify what remains."""
        self._queue = [event for event in self._queue if not event.cancelled]
        heapq.heapify(self._queue)
        self._dead_in_queue = 0

    def step(self) -> bool:
        """Run the next pending event.  Returns False when none remain."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._dead_in_queue -= 1
                continue
            self.now = event.time
            event.fired = True
            self._live -= 1
            self._events_executed += 1
            previous = self.executing_priority
            self.executing_priority = event.priority
            try:
                event.fn()
            finally:
                self.executing_priority = previous
            return True
        return False

    def run(self, until: float | None = None) -> None:
        """Run events until the calendar drains or the clock passes *until*."""
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                self._dead_in_queue -= 1
                continue
            if until is not None and head.time > until:
                self.now = until
                return
            self.step()
        if until is not None and until > self.now:
            self.now = until

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still scheduled (O(1))."""
        return self._live

    @property
    def events_executed(self) -> int:
        return self._events_executed

    def __repr__(self) -> str:
        return f"<Simulation now={self.now:.6g} pending={self.pending}>"
