"""Query handles exchanged between the engine and a database server."""

from __future__ import annotations

from typing import Callable

__all__ = ["QueryHandle", "CompletionCallback"]

#: ``on_complete(processed_units, completed)`` — *completed* is False when
#: the query was cancelled; *processed_units* counts the units of
#: processing the database actually performed either way.
CompletionCallback = Callable[[int, bool], None]


class QueryHandle:
    """One query dispatched to a database server.

    Cancellation is cooperative and takes effect at the next unit boundary:
    the unit currently in service (or already queued at a resource) still
    completes and counts as work — you cannot un-spend database resources.

    The per-unit kernels advance :attr:`processed` one unit event at a
    time.  The coalesced kernels instead keep an analytic plan on the
    handle — :attr:`units_done` boundaries already passed, the absolute
    end time :attr:`unit_end` of the unit now in service, and the
    :attr:`unit_time` every later unit will take — and only materialize
    :attr:`processed` when the single completion event fires.
    """

    #: shared-wait placeholders set this False so the scheduler's
    #: %Permitted cut ignores them; real queries occupy a slot.
    counts_for_parallelism = True

    __slots__ = (
        "query_id",
        "cost",
        "processed",
        "finished",
        "cancel_requested",
        "submit_time",
        "failed",
        "units_done",
        "unit_end",
        "unit_time",
        "cancel_units",
        "cancel_time",
        "_event",
        "_cancel_hook",
    )

    def __init__(self, query_id: int, cost: int, submit_time: float):
        self.query_id = query_id
        self.cost = cost
        self.processed = 0
        self.finished = False
        self.cancel_requested = False
        self.submit_time = submit_time
        #: set by the database when the query errored after doing its work
        #: (failure injection: "if a database is down")
        self.failed = False
        #: coalesced-kernel plan (unused by the per-unit kernels)
        self.units_done = 0
        self.unit_end: float | None = None
        self.unit_time: float | None = None
        #: fixed outcome of a planned cancellation (units, finish time)
        self.cancel_units: int | None = None
        self.cancel_time: float | None = None
        self._event = None
        self._cancel_hook: Callable[[], None] | None = None

    def cancel(self) -> None:
        """Request cancellation (no-op if already finished or requested)."""
        if self.finished or self.cancel_requested:
            return
        self.cancel_requested = True
        if self._cancel_hook is not None:
            self._cancel_hook()

    def __repr__(self) -> str:
        status = "done" if self.finished else ("cancelling" if self.cancel_requested else "running")
        return f"<QueryHandle #{self.query_id} {self.processed}/{self.cost}u {status}>"
