"""Query handles exchanged between the engine and a database server."""

from __future__ import annotations

from typing import Callable

__all__ = ["QueryHandle", "CompletionCallback"]

#: ``on_complete(processed_units, completed)`` — *completed* is False when
#: the query was cancelled; *processed_units* counts the units of
#: processing the database actually performed either way.
CompletionCallback = Callable[[int, bool], None]


class QueryHandle:
    """One query dispatched to a database server.

    Cancellation is cooperative and takes effect at the next unit boundary:
    the unit currently in service (or already queued at a resource) still
    completes and counts as work — you cannot un-spend database resources.
    """

    __slots__ = (
        "query_id",
        "cost",
        "processed",
        "finished",
        "cancel_requested",
        "submit_time",
        "failed",
    )

    def __init__(self, query_id: int, cost: int, submit_time: float):
        self.query_id = query_id
        self.cost = cost
        self.processed = 0
        self.finished = False
        self.cancel_requested = False
        self.submit_time = submit_time
        #: set by the database when the query errored after doing its work
        #: (failure injection: "if a database is down")
        self.failed = False

    def cancel(self) -> None:
        """Request cancellation (no-op if already finished)."""
        if not self.finished:
            self.cancel_requested = True

    def __repr__(self) -> str:
        status = "done" if self.finished else ("cancelling" if self.cancel_requested else "running")
        return f"<QueryHandle #{self.query_id} {self.processed}/{self.cost}u {status}>"
