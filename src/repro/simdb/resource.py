"""Multi-server FCFS service centers (CPUs and disks of the database).

The paper simulates the database "using a physical model similar to
[ACL87] where disks and CPUs are simulated using service queues".  A
:class:`ServiceCenter` models *k* identical servers in front of one FCFS
queue; jobs request a service time and get a callback on completion.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.simdb.des import Simulation

__all__ = ["ServiceCenter"]


class ServiceCenter:
    """*k* identical servers sharing one FCFS queue on a simulation clock."""

    __slots__ = (
        "sim",
        "name",
        "servers",
        "_busy",
        "_queue",
        "completions",
        "busy_time",
        "_waiting_area_peak",
    )

    def __init__(self, sim: Simulation, servers: int, name: str = "center"):
        if servers < 1:
            raise ValueError(f"service center needs >= 1 server, got {servers}")
        self.sim = sim
        self.name = name
        self.servers = servers
        self._busy = 0
        self._queue: deque[tuple[float, Callable[[], None]]] = deque()
        self.completions = 0
        self.busy_time = 0.0
        self._waiting_area_peak = 0

    def request(self, service_time: float, on_done: Callable[[], None]) -> None:
        """Enqueue a job needing *service_time*; *on_done* fires at completion."""
        if service_time < 0:
            raise ValueError(f"negative service time {service_time}")
        if self._busy < self.servers:
            self._start(service_time, on_done)
        else:
            self._queue.append((service_time, on_done))
            self._waiting_area_peak = max(self._waiting_area_peak, len(self._queue))

    def _start(self, service_time: float, on_done: Callable[[], None]) -> None:
        self._busy += 1
        self.busy_time += service_time

        def finish() -> None:
            self._busy -= 1
            self.completions += 1
            if self._queue:
                next_service, next_done = self._queue.popleft()
                self._start(next_service, next_done)
            on_done()

        self.sim.schedule(service_time, finish)

    @property
    def busy(self) -> int:
        return self._busy

    @property
    def queued(self) -> int:
        return len(self._queue)

    @property
    def peak_queue(self) -> int:
        return self._waiting_area_peak

    def utilization(self, elapsed: float | None = None) -> float:
        """Mean fraction of server capacity in use over *elapsed* time."""
        elapsed = self.sim.now if elapsed is None else elapsed
        if elapsed <= 0:
            return 0.0
        return self.busy_time / (elapsed * self.servers)

    def __repr__(self) -> str:
        return f"<ServiceCenter {self.name} busy={self._busy}/{self.servers} queued={self.queued}>"
