"""Database servers: the external systems that execute foreign tasks.

Three implementations of the same submit/complete interface:

* :class:`IdealDatabase` — the *unbounded resources* setting of section 5:
  every unit of processing takes exactly one tick of simulated time and
  any number of units proceed in parallel.  Response times read off this
  database are the paper's **TimeInUnits**.
* :class:`SimulatedDatabase` — the *bounded resources* setting: a physical
  model in the style of [ACL87] with ``num_cpus`` CPU servers and
  ``num_disks`` disk servers behind FCFS queues.  Each unit of processing
  fetches ``unit_io_cost`` pages (each hits the buffer with probability
  ``%IO_hit``, otherwise pays ``IO_delay`` on a disk) and then consumes
  ``unit_cpu_cost`` quanta of CPU.  The clock is in milliseconds; response
  times are the paper's **TimeInSeconds** after division by 1000.
* :class:`ProfiledDatabase` — an analytic stand-in calibrated by an
  empirical Db(Gmpl) function; milliseconds, far cheaper than the
  physical model.

All track Gmpl — the database multiprogramming level, i.e. the number of
queries with a unit in process — as a time-weighted average, which the
analytical model of section 5 consumes.

Cost models
-----------

``IdealDatabase`` and ``ProfiledDatabase`` default to the **coalesced**
kernel: a query's trajectory between multiprogramming-level changes is
analytic (its unit time is constant over that window), so one completion
event per query replaces one heap event per unit of processing.  Work at
cancellation is recovered from unit-boundary arithmetic, keeping the
accounting identical to walking unit by unit.  Pass ``kernel="per-unit"``
to get the original unit-event reference kernel; the differential test
suite asserts the two produce identical traces.  ``SimulatedDatabase``
has no coalesced form — a unit's duration there depends on stochastic
buffer hits and FCFS queueing, so it is inherently per-visit.
"""

from __future__ import annotations

from array import array
from bisect import bisect_right
from dataclasses import dataclass
from typing import Sequence

from repro.simdb.des import Simulation
from repro.simdb.query import CompletionCallback, QueryHandle
from repro.simdb.rng import derive_rng

__all__ = [
    "DbParams",
    "DatabaseServer",
    "IdealDatabase",
    "SimulatedDatabase",
    "ProfiledDatabase",
    "QueryShareCache",
    "QUERY_MEMO_LIMIT",
]

#: Bound on completed-result memo entries per :class:`QueryShareCache`.
#: Service workloads with unique per-request inputs get no reuse, so an
#: unbounded memo would grow one entry per query forever.
QUERY_MEMO_LIMIT = 4096


def _query_priority(handle: QueryHandle) -> tuple[int, int]:
    """Same-time tie break for unit/completion events: submission order.

    Band 1 places database events after plain events (instance starts,
    arrival processes) and before zero-delay result deliveries.  Within
    the band, queries interleave by submission order under *both* kernels,
    which is what makes their traces comparable event for event.
    """
    return (1, handle.query_id)


@dataclass(frozen=True)
class DbParams:
    """Physical parameters of the simulated database (Table 1, last rows).

    ``cpu_ms`` is a calibration constant not in Table 1: the wall-clock
    duration of one CPU quantum.  The default (8 ms) makes the Db curve
    span roughly 10–100 ms over Gmpl 0–35, the range of the paper's
    Figure 9(a).
    """

    num_cpus: int = 4
    num_disks: int = 10
    unit_cpu_cost: int = 1
    unit_io_cost: int = 1
    pct_io_hit: float = 50.0
    io_delay_ms: float = 5.0
    cpu_ms: float = 8.0
    #: probability that a query errors at completion (failure injection for
    #: the paper's "database is down" scenario); work is still consumed.
    failure_prob: float = 0.0

    def expected_unit_service_ms(self) -> float:
        """Mean resource demand of one unit at zero contention."""
        miss = 1.0 - self.pct_io_hit / 100.0
        return self.unit_cpu_cost * self.cpu_ms + self.unit_io_cost * miss * self.io_delay_ms

    def max_unit_throughput_per_ms(self) -> float:
        """Saturation throughput in units per millisecond (bottleneck law)."""
        cpu_capacity = self.num_cpus / (self.unit_cpu_cost * self.cpu_ms)
        miss = 1.0 - self.pct_io_hit / 100.0
        disk_demand = self.unit_io_cost * miss * self.io_delay_ms
        disk_capacity = self.num_disks / disk_demand if disk_demand > 0 else float("inf")
        return min(cpu_capacity, disk_capacity)


class DatabaseServer:
    """Common bookkeeping: Gmpl tracking, work accounting, failure draws."""

    def __init__(self, sim: Simulation, failure_prob: float = 0.0, seed: int = 0):
        if not 0.0 <= failure_prob <= 1.0:
            raise ValueError(f"failure_prob must be in [0, 1], got {failure_prob}")
        self.sim = sim
        self._query_seq = 0
        self.total_units = 0
        self.queries_completed = 0
        self.queries_cancelled = 0
        self.queries_failed = 0
        self.failure_prob = failure_prob
        self._failure_rng = derive_rng(seed, "db-failures")
        self._active = 0
        self._gmpl_integral = 0.0
        self._gmpl_last_change = sim.now
        # Piecewise-linear integral trace: one (time, integral) point per
        # distinct change instant, so any window's integral is exact.
        self._gmpl_times = array("d", [sim.now])
        self._gmpl_integrals = array("d", [0.0])

    # -- Gmpl accounting ----------------------------------------------------

    def _change_active(self, delta: int) -> None:
        now = self.sim.now
        if now != self._gmpl_last_change:
            self._gmpl_integral += self._active * (now - self._gmpl_last_change)
            self._gmpl_last_change = now
            self._gmpl_times.append(now)
            self._gmpl_integrals.append(self._gmpl_integral)
        self._active += delta

    @property
    def gmpl(self) -> int:
        """Current multiprogramming level (queries with a unit in process)."""
        return self._active

    def mean_gmpl(self, since: float = 0.0) -> float:
        """Time-weighted mean Gmpl over the window from *since* until now.

        The mean divides the integral accumulated *inside the window* by
        the window length, so warmup-trimmed measurements (``since > 0``)
        are exact rather than inflated by pre-window history.
        """
        now = self.sim.now
        elapsed = now - since
        if elapsed <= 0:
            return 0.0
        total = self._gmpl_integral + self._active * (now - self._gmpl_last_change)
        return (total - self._gmpl_integral_at(since)) / elapsed

    def trim_gmpl_history(self, keep_since: float) -> int:
        """Drop Gmpl trace points before *keep_since*; returns the count.

        The windowed-mean trace costs two floats per Gmpl change instant
        (~2 changes per query), which an unbounded sweep would accumulate
        forever.  After trimming, ``mean_gmpl(since=t)`` stays exact for
        any ``t >= keep_since``; windows reaching further back are clamped
        to the trimmed start.
        """
        index = bisect_right(self._gmpl_times, keep_since) - 1
        if index <= 0:
            return 0
        self._gmpl_times = self._gmpl_times[index:]
        self._gmpl_integrals = self._gmpl_integrals[index:]
        return index

    def _gmpl_integral_at(self, t: float) -> float:
        """The Gmpl integral accumulated from the server's start until *t*."""
        times = self._gmpl_times
        if t <= times[0]:
            # Before the recorded trace: zero for a fresh server, the
            # clamped start for a trimmed one.
            return self._gmpl_integrals[0]
        index = bisect_right(times, t) - 1
        base = self._gmpl_integrals[index]
        if index == len(times) - 1:
            slope = float(self._active)
        else:
            span = times[index + 1] - times[index]
            slope = (self._gmpl_integrals[index + 1] - base) / span
        return base + slope * (t - times[index])

    # -- submission ----------------------------------------------------------

    def submit(self, cost: int, on_complete: CompletionCallback) -> QueryHandle:
        """Dispatch a query of *cost* units; *on_complete* fires once."""
        if cost < 1:
            raise ValueError(f"query cost must be >= 1, got {cost}")
        self._query_seq += 1
        handle = QueryHandle(self._query_seq, cost, self.sim.now)
        self._change_active(+1)
        self._begin(handle, on_complete)
        return handle

    def _begin(self, handle: QueryHandle, on_complete: CompletionCallback) -> None:
        """Start executing a submitted query (kernel-specific)."""
        self._start_unit(handle, on_complete)

    # -- per-unit reference kernel --------------------------------------------

    def _start_unit(self, handle: QueryHandle, on_complete: CompletionCallback) -> None:
        raise NotImplementedError

    def _unit_finished(self, handle: QueryHandle, on_complete: CompletionCallback) -> None:
        handle.processed += 1
        self.total_units += 1
        if handle.processed >= handle.cost:
            self._finish(handle, on_complete, completed=True)
        elif handle.cancel_requested:
            self._finish(handle, on_complete, completed=False)
        else:
            self._start_unit(handle, on_complete)

    def _finish(self, handle: QueryHandle, on_complete: CompletionCallback, completed: bool) -> None:
        handle.finished = True
        self._change_active(-1)
        if completed:
            self.queries_completed += 1
            if self.failure_prob > 0 and self._failure_rng.random() < self.failure_prob:
                # The database did the work but the query errored (timeout,
                # deadlock victim, replica down): the caller sees a failure.
                handle.failed = True
                self.queries_failed += 1
        else:
            self.queries_cancelled += 1
        on_complete(handle.processed, completed)


class _CoalescedServer(DatabaseServer):
    """Shared machinery of the event-coalesced kernels.

    A query's plan lives on its handle: ``units_done`` boundaries already
    behind it, the absolute end time ``unit_end`` of the unit in service,
    and the ``unit_time`` every later unit will take.  Exactly one
    completion event is scheduled per query; cancellation and (for the
    profiled server) multiprogramming-level changes reschedule it.  Unit
    boundaries that pass silently are recovered by repeated addition —
    the same float accumulation the per-unit kernel performs — so Work
    accounting at cancellation is identical to walking unit by unit.
    """

    def __init__(
        self, sim: Simulation, failure_prob: float = 0.0, seed: int = 0, kernel: str = "coalesced"
    ):
        if kernel not in ("coalesced", "per-unit"):
            raise ValueError(f"kernel must be 'coalesced' or 'per-unit', got {kernel!r}")
        super().__init__(sim, failure_prob, seed)
        self.kernel = kernel
        #: live coalesced queries in submission order (query id → plan)
        self._inflight: dict[int, tuple[QueryHandle, CompletionCallback]] = {}

    def _unit_rate(self) -> float:
        """Duration of a unit of processing starting now."""
        raise NotImplementedError

    def _tie_boundary_fired(self, handle: QueryHandle) -> bool:
        """Has a unit boundary falling exactly *now* already fired?

        Under the per-unit kernel the boundary is a real band-1 event; it
        precedes the currently executing event iff its priority is lower.
        Outside any dispatch every same-time event has already run.
        """
        current = self.sim.executing_priority
        return current is None or _query_priority(handle) < current

    def _begin(self, handle: QueryHandle, on_complete: CompletionCallback) -> None:
        if self.kernel == "per-unit":
            self._start_unit(handle, on_complete)
            return
        rate = self._unit_rate()
        handle.unit_time = rate
        handle.unit_end = self.sim.now + rate
        self._inflight[handle.query_id] = (handle, on_complete)
        handle._cancel_hook = lambda: self._on_cancel_request(handle, on_complete)
        self._arm_completion(handle, on_complete)

    def _arm_completion(self, handle: QueryHandle, on_complete: CompletionCallback) -> None:
        """Schedule the freshly planned query's completion (one event each)."""
        handle._event = self.sim.schedule_at(
            self._completion_time(handle),
            lambda: self._complete(handle, on_complete),
            _query_priority(handle),
        )

    def _completion_time(self, handle: QueryHandle) -> float:
        return handle.unit_end + (handle.cost - handle.units_done - 1) * handle.unit_time

    def _complete(self, handle: QueryHandle, on_complete: CompletionCallback) -> None:
        del self._inflight[handle.query_id]
        handle.units_done = handle.cost
        handle.processed = handle.cost
        self.total_units += handle.cost
        self._finish(handle, on_complete, completed=True)

    def _cancel_plan(self, handle: QueryHandle) -> tuple[int, float]:
        """Final unit count and finish time for a cancellation request now.

        The per-unit contract: the query finishes — cancelled, with every
        unit up to and including the one in service counted — at the next
        unit boundary after the request.
        """
        now = self.sim.now
        while handle.unit_end < now and handle.units_done + 1 < handle.cost:
            handle.units_done += 1
            handle.unit_end += handle.unit_time
        if handle.unit_end == now:
            # A boundary falls exactly at the cancel instant.  If its
            # per-unit event would already have fired, the next unit is in
            # service and still completes; otherwise the boundary itself
            # delivers the cancellation.
            if self._tie_boundary_fired(handle):
                return handle.units_done + 2, now + handle.unit_time
            return handle.units_done + 1, now
        return handle.units_done + 1, handle.unit_end

    def _on_cancel_request(self, handle: QueryHandle, on_complete: CompletionCallback) -> None:
        final, when = self._cancel_plan(handle)
        if final >= handle.cost:
            return  # the remaining units complete anyway: too late to cancel
        handle._event.cancel()
        handle._event = self.sim.schedule_at(
            when, lambda: self._cancelled(handle, on_complete, final), _query_priority(handle)
        )

    def _cancelled(self, handle: QueryHandle, on_complete: CompletionCallback, final: int) -> None:
        del self._inflight[handle.query_id]
        handle.units_done = final
        handle.processed = final
        self.total_units += final
        self._finish(handle, on_complete, completed=False)


class IdealDatabase(_CoalescedServer):
    """Unbounded resources: one unit of processing per tick, full parallelism."""

    def __init__(
        self,
        sim: Simulation,
        unit_duration: float = 1.0,
        failure_prob: float = 0.0,
        seed: int = 0,
        kernel: str = "coalesced",
    ):
        super().__init__(sim, failure_prob, seed, kernel)
        if unit_duration <= 0:
            raise ValueError(f"unit_duration must be positive, got {unit_duration}")
        self.unit_duration = unit_duration

    def _unit_rate(self) -> float:
        return self.unit_duration

    def _completion_time(self, handle: QueryHandle) -> float:
        # Accumulate like the per-unit kernel (one addition per boundary)
        # so finish instants are bit-identical for *any* unit_duration,
        # not only the exactly representable ones.
        when = handle.unit_end
        for _ in range(handle.cost - handle.units_done - 1):
            when += handle.unit_time
        return when

    def _start_unit(self, handle: QueryHandle, on_complete: CompletionCallback) -> None:
        self.sim.schedule(
            self.unit_duration,
            lambda: self._unit_finished(handle, on_complete),
            _query_priority(handle),
        )


class SimulatedDatabase(DatabaseServer):
    """Bounded resources: CPU and disk service queues per [ACL87]."""

    def __init__(self, sim: Simulation, params: DbParams | None = None, seed: int = 0):
        params = params or DbParams()
        super().__init__(sim, params.failure_prob, seed)
        # Imported here to avoid a hard dependency for IdealDatabase users.
        from repro.simdb.resource import ServiceCenter

        self.params = params
        self.cpus = ServiceCenter(sim, self.params.num_cpus, "cpus")
        self.disks = ServiceCenter(sim, self.params.num_disks, "disks")
        self._rng = derive_rng(seed, "simdb", "buffer")

    def _start_unit(self, handle: QueryHandle, on_complete: CompletionCallback) -> None:
        self._fetch_pages(handle, on_complete, remaining=self.params.unit_io_cost)

    def _fetch_pages(self, handle: QueryHandle, on_complete: CompletionCallback, remaining: int) -> None:
        if remaining <= 0:
            self.cpus.request(
                self.params.unit_cpu_cost * self.params.cpu_ms,
                lambda: self._unit_finished(handle, on_complete),
            )
            return
        hit = self._rng.random() < self.params.pct_io_hit / 100.0
        if hit:
            # Buffer hit: no disk visit; continue with the next page now.
            self._fetch_pages(handle, on_complete, remaining - 1)
        else:
            self.disks.request(
                self.params.io_delay_ms,
                lambda: self._fetch_pages(handle, on_complete, remaining - 1),
            )


class ProfiledDatabase(_CoalescedServer):
    """Analytic stand-in calibrated by an empirical Db function.

    Each unit of processing takes ``Db(Gmpl)`` milliseconds at the
    multiprogramming level current when the unit starts — the contention
    model of Equation (4) applied directly, without simulating individual
    CPU/disk visits.  Gmpl (and hence the unit time) only changes when a
    query is submitted or finishes, so between changes every in-flight
    query advances at a known constant rate.

    The coalesced kernel therefore keeps each query's trajectory as three
    plain fields, re-priced in one arithmetic pass per Gmpl change, and
    arms a *single* heap event — the earliest due completion — chaining to
    the next on every dispatch.  Heap traffic is O(Gmpl changes), not
    O(changes × in-flight), which is what makes this the cheap substrate
    for large capacity sweeps even under heavy overlap.
    """

    def __init__(
        self,
        sim: Simulation,
        db_function,
        failure_prob: float = 0.0,
        seed: int = 0,
        kernel: str = "coalesced",
    ):
        super().__init__(sim, failure_prob, seed, kernel)
        if not callable(db_function):
            raise TypeError(f"db_function must be callable, got {db_function!r}")
        self.db_function = db_function
        self._next_event = None
        self._next_key: tuple[float, int] | None = None

    def _unit_rate(self) -> float:
        # The submitting query is already counted in Gmpl (>= 1 here).
        unit_ms = float(self.db_function(self.gmpl))
        if unit_ms <= 0:
            raise ValueError(f"Db function returned non-positive UnitTime {unit_ms}")
        return unit_ms

    def _start_unit(self, handle: QueryHandle, on_complete: CompletionCallback) -> None:
        self.sim.schedule(
            self._unit_rate(),
            lambda: self._unit_finished(handle, on_complete),
            _query_priority(handle),
        )

    # -- coalesced planning ----------------------------------------------------

    def _arm_completion(self, handle: QueryHandle, on_complete: CompletionCallback) -> None:
        # The submission's Gmpl change already re-priced the others; the
        # new query only needs to contend for the single armed slot.
        key = (self._completion_time(handle), handle.query_id)
        if self._next_key is None or key < self._next_key:
            self._arm(handle, key)

    def _completion_due(self, handle: QueryHandle) -> float:
        if handle.cancel_time is not None:
            return handle.cancel_time
        return self._completion_time(handle)

    def _change_active(self, delta: int) -> None:
        super()._change_active(delta)
        if self._inflight:
            self._resync_and_arm()

    def _resync_and_arm(self) -> None:
        """Gmpl changed: re-price every unit that has not started yet.

        The unit in service keeps its duration (resources already
        committed); units after it take the new ``Db(Gmpl)`` rate, exactly
        as the per-unit kernel would price them at their own start times.
        A cancel-planned query's remaining units have all started, so its
        finish is fixed and it only contends for the armed event.
        """
        now = self.sim.now
        rate = self._unit_rate()
        best = None
        best_key = None
        for handle, _cb in self._inflight.values():
            if not handle.cancel_requested:
                old = handle.unit_time
                while handle.unit_end < now and handle.units_done + 1 < handle.cost:
                    handle.units_done += 1
                    handle.unit_end += old
                if (
                    handle.unit_end == now
                    and handle.units_done + 1 < handle.cost
                    and self._tie_boundary_fired(handle)
                ):
                    # That boundary's unit began before this Gmpl change,
                    # so it was priced at the outgoing rate.
                    handle.units_done += 1
                    handle.unit_end += old
                handle.unit_time = rate
            key = (self._completion_due(handle), handle.query_id)
            if best_key is None or key < best_key:
                best_key, best = key, handle
        self._arm(best, best_key)

    def _arm(self, handle: QueryHandle | None, key: tuple[float, int] | None) -> None:
        if self._next_key == key:
            return
        if self._next_event is not None:
            self._next_event.cancel()
            self._next_event = None
        self._next_key = key
        if handle is None:
            return
        when, query_id = key
        self._next_event = self.sim.schedule_at(
            when, lambda: self._fire(handle), (1, query_id)
        )

    def _fire(self, handle: QueryHandle) -> None:
        self._next_event = None
        self._next_key = None
        _handle, on_complete = self._inflight.pop(handle.query_id)
        if handle.cancel_units is not None:
            final = handle.cancel_units
            handle.units_done = final
            handle.processed = final
            self.total_units += final
            self._finish(handle, on_complete, completed=False)
        else:
            handle.units_done = handle.cost
            handle.processed = handle.cost
            self.total_units += handle.cost
            self._finish(handle, on_complete, completed=True)

    def _on_cancel_request(self, handle: QueryHandle, on_complete: CompletionCallback) -> None:
        final, when = self._cancel_plan(handle)
        if final >= handle.cost:
            return  # the remaining units complete anyway: too late to cancel
        handle.cancel_units = final
        handle.cancel_time = when
        key = (when, handle.query_id)
        if self._next_key is None or key < self._next_key:
            self._arm(handle, key)


class _CacheFollower:
    """Placeholder handle for a query answered by the share cache.

    Presents the :class:`~repro.simdb.query.QueryHandle` surface the
    engine touches — ``cancel()``, ``failed``, ``counts_for_parallelism``
    — without occupying the database: a follower costs the server
    nothing, so it must not consume a %Permitted parallelism slot, and
    cancelling it only flags the eventual delivery as cancelled (there is
    no in-service unit to stop).
    """

    #: followers cost the database nothing, so the scheduler's in-flight
    #: cut must ignore them (same contract as engine-level shared waits).
    counts_for_parallelism = False

    __slots__ = ("key", "cost", "on_complete", "cancel_requested", "finished", "failed")

    def __init__(self, key: object, cost: int, on_complete: CompletionCallback):
        self.key = key
        self.cost = cost
        self.on_complete = on_complete
        self.cancel_requested = False
        self.finished = False
        self.failed = False

    def cancel(self) -> None:
        """Mark the pending delivery cancelled (resolved at fan-out)."""
        if self.finished or self.cancel_requested:
            return
        self.cancel_requested = True

    def __repr__(self) -> str:
        status = "done" if self.finished else (
            "cancelling" if self.cancel_requested else "waiting"
        )
        return f"<_CacheFollower cost={self.cost} {status}>"


class QueryShareCache:
    """Coalesce identical queries to one database dispatch per key.

    The paper's thesis is that data-intensive decision flows win by
    *sharing and avoiding* expensive source accesses; the survey
    literature (Kougka & Gounaris) names result reuse/materialization as
    the dominant lever next to task re-ordering.  This cache is that
    lever at the database-access layer, below the engine's §6
    ``share_results`` table (which shares *values* and rewires launches):

    * an **in-flight** identical query (same key: task, frozen inputs,
      cost) is *coalesced* — the second submission gets a
      :class:`_CacheFollower` whose completion callback fires, with zero
      units of work, when the one real query completes;
    * a **completed** identical query is served from a bounded LRU memo
      as a *hit* — a zero-delay band-2 delivery, the same priority as
      engine-level shared-result deliveries, so per-event and pooled
      dispatch order it identically;
    * anything else is a **miss** and dispatches to the wrapped database.

    Failed primaries resolve their followers (marked ``failed``) but are
    never memoized, so the next identical query retries.  A cancelled
    primary strands its followers; the cache reissues one fresh query on
    behalf of the still-live ones (mirroring the engine share table's
    abandon/reissue protocol).  Counters — ``hits`` / ``misses`` /
    ``coalesced`` — surface through ``DecisionService.summary()``.

    **L2 tier.**  In a sharded fleet this cache is the per-shard *L1*;
    pass ``l2`` (a :class:`~repro.runtime.l2cache.ShardL2View`) to stack
    the cross-shard tier underneath: an L1 miss probes the L2 before
    dispatching (``l2_hits`` / ``l2_misses``), a hit promotes the key
    into the L1 memo and serves the same zero-delay band-2 delivery as a
    memo hit, and every successful primary completion publishes its key
    up (``l2_promotions`` counts keys new to the shard's view).  The L2
    inherits the L1's failure semantics for free — publication happens
    only on the success path, so failed results never reach the tier and
    cancelled primaries follow the reissue protocol before anything is
    published.

    Semantics: like every sharing optimization, coalescing changes
    execution *dynamics* relative to an uncached run — shared
    completions arrive earlier, followers hold no %Permitted slot, and
    one failure draw per real dispatch means followers inherit the
    primary's outcome — while the value each completed query delivers
    is unchanged (the paper's fixed-data assumption).  Cached runs are
    themselves fully deterministic and identical across engines,
    dispatch modes, and shard executors (the differential suites pin
    this down); they are not bit-comparable to uncached runs.
    """

    def __init__(
        self,
        database: DatabaseServer,
        memo_limit: int = QUERY_MEMO_LIMIT,
        l2=None,
    ):
        if memo_limit < 1:
            raise ValueError(f"memo_limit must be >= 1, got {memo_limit}")
        self.database = database
        self.memo_limit = memo_limit
        #: the shared cross-shard tier (ShardL2View), or None when this
        #: cache runs standalone (single shard, or the tier is disarmed)
        self.l2 = l2
        #: key -> (primary handle, follower list), one entry per live key
        self._inflight: dict[object, tuple[QueryHandle, list[_CacheFollower]]] = {}
        #: primary handle -> key (waiter lookups, entry cleanup)
        self._handle_key: dict[QueryHandle, object] = {}
        #: key -> count of *virtual* followers: coalesced waiters an
        #: engine-level aggregation (cohort execution) accounts for
        #: itself instead of materializing one _CacheFollower each.
        #: They pin the primary exactly like live real followers; their
        #: resolution bookkeeping happens in the issuer's completion
        #: callback, so the cache only counts them.
        self._virtual: dict[object, int] = {}
        #: completed keys, LRU-ordered (oldest first)
        self._memo: dict[object, bool] = {}
        self.hits = 0
        self.misses = 0
        self.coalesced = 0
        self.reissues = 0
        self.l2_hits = 0
        self.l2_misses = 0
        self.l2_promotions = 0
        #: bumped whenever a *real* follower coalesces anywhere; lets
        #: engine aggregations skip per-key follower re-checks while no
        #: coalescing has happened at all (the overwhelmingly common
        #: case during a burst of identical submissions)
        self.follower_epoch = 0

    # -- submission ----------------------------------------------------------

    def submit(self, key: object, cost: int, on_complete: CompletionCallback):
        """Dispatch, coalesce, or answer a query for *key* from the memo.

        Returns the handle the caller should treat exactly like a
        :meth:`DatabaseServer.submit` result.
        """
        if cost < 1:
            raise ValueError(f"query cost must be >= 1, got {cost}")
        memo = self._memo
        if key in memo:
            self.hits += 1
            if next(reversed(memo)) != key:
                # Refresh LRU recency so hot keys are the last evicted.
                del memo[key]
                memo[key] = True
            follower = _CacheFollower(key, cost, on_complete)
            # Deliver asynchronously (band 2, like engine-level shared
            # results) so state changes stay event-driven and pooled
            # dispatch sees the same event order as per-event stepping.
            self.database.sim.schedule(
                0.0, lambda: self._deliver(follower), priority=(2, 0)
            )
            return follower
        entry = self._inflight.get(key)
        if entry is not None:
            self.coalesced += 1
            self.follower_epoch += 1
            follower = _CacheFollower(key, cost, on_complete)
            entry[1].append(follower)
            return follower
        l2 = self.l2
        if l2 is not None:
            if l2.probe(key):
                # Another shard completed this key in an earlier round:
                # promote it into the L1 memo and serve the same
                # zero-delay band-2 delivery as a memo hit.
                self.l2_hits += 1
                self._remember(key)
                follower = _CacheFollower(key, cost, on_complete)
                self.database.sim.schedule(
                    0.0, lambda: self._deliver(follower), priority=(2, 0)
                )
                return follower
            self.l2_misses += 1
        self.misses += 1
        return self._dispatch(key, cost, on_complete)

    def _dispatch(
        self, key: object, cost: int, on_complete: CompletionCallback | None
    ) -> QueryHandle:
        """Issue the one real database query behind *key*."""
        handle = self.database.submit(
            cost, lambda processed, completed: self._primary_done(
                key, on_complete, processed, completed
            )
        )
        self._inflight[key] = (handle, [])
        self._handle_key[handle] = key
        return handle

    # -- resolution ----------------------------------------------------------

    def _primary_done(
        self,
        key: object,
        on_complete: CompletionCallback | None,
        processed: int,
        completed: bool,
    ) -> None:
        primary, followers = self._inflight.pop(key)
        del self._handle_key[primary]
        # Virtual followers resolve inside the issuer's callback below
        # (the engine fans their bookkeeping itself); drop the pin.
        self._virtual.pop(key, None)
        if completed:
            failed = primary.failed
            if not failed:
                # Memoize before the issuer advances: a same-key launch
                # made inside its advance must hit, not re-dispatch.
                self._remember(key)
                if self.l2 is not None and self.l2.publish(key):
                    self.l2_promotions += 1
            if on_complete is not None:
                on_complete(processed, completed)
            self._fan_out(followers, failed)
            return
        # The primary was cancelled.  Resolve the issuer first (it keeps
        # ownership of its own advance), then the followers.
        if on_complete is not None:
            on_complete(processed, completed)
        live: list[_CacheFollower] = []
        for follower in followers:
            if follower.cancel_requested:
                follower.finished = True
                follower.on_complete(0, False)
            else:
                live.append(follower)
        if not live:
            return
        # Reissue one fresh query on behalf of the stranded followers —
        # unless the issuer's advance already re-dispatched the key, in
        # which case they join that entry.
        entry = self._inflight.get(key)
        if entry is not None:
            self.follower_epoch += 1
            entry[1].extend(live)
            return
        self.reissues += 1
        reissued = self._dispatch(key, live[0].cost, None)
        self._inflight[key] = (reissued, live)

    def _fan_out(self, followers: list[_CacheFollower], failed: bool) -> None:
        """Resolve every follower of a completed primary, in join order."""
        for follower in followers:
            follower.finished = True
            if follower.cancel_requested:
                follower.on_complete(0, False)
            else:
                follower.failed = failed
                follower.on_complete(0, True)

    def _deliver(self, follower: _CacheFollower) -> None:
        """Fire a memo hit's zero-delay delivery."""
        follower.finished = True
        if follower.cancel_requested:
            follower.on_complete(0, False)
        else:
            follower.on_complete(0, True)

    def _remember(self, key: object) -> None:
        memo = self._memo
        if key in memo:
            return
        if len(memo) >= self.memo_limit:
            memo.pop(next(iter(memo)))
        memo[key] = True

    # -- virtual followers (cohort-weighted coalescing) -----------------------
    #
    # Cohort execution dedupes whole instances: every member of a cohort
    # would submit the same key and coalesce behind the representative's
    # primary.  Rather than materializing one _CacheFollower per member
    # per query, the engine attaches a *count* — counters and waiter
    # pinning behave exactly as if that many live followers had joined,
    # while resolution bookkeeping is fanned by the engine inside the
    # issuer's completion callback (the same event real followers would
    # resolve in).

    def is_primary(self, handle: object) -> bool:
        """Whether *handle* is the live primary of an in-flight key."""
        return handle in self._handle_key

    def follower_count(self, handle: object) -> int:
        """Real followers already coalesced behind *handle* (0 otherwise).

        Virtual attachments are fanned ahead of the real follower list,
        so they stay order-exact only while they precede every real
        follower; the engine checks this before attaching at a cohort
        join.  Cancelled followers still occupy fan-out positions and
        therefore count here.
        """
        key = self._handle_key.get(handle)
        if key is None:
            return 0
        entry = self._inflight.get(key)
        return len(entry[1]) if entry is not None else 0

    def attach_virtual(self, handle: object, count: int) -> None:
        """Coalesce *count* virtual followers behind a primary handle."""
        key = self._handle_key[handle]
        self.coalesced += count
        self._virtual[key] = self._virtual.get(key, 0) + count

    def release_virtual(self, handle: object, count: int) -> None:
        """Un-pin *count* virtual followers (they cancelled their wait)."""
        key = self._handle_key[handle]
        left = self._virtual.get(key, 0) - count
        if left > 0:
            self._virtual[key] = left
        else:
            self._virtual.pop(key, None)

    def materialize_virtual(
        self, handle: object, specs: Sequence[tuple[int, CompletionCallback, bool]]
    ) -> list[_CacheFollower]:
        """Convert virtual followers into real ones (cohort demotion).

        *specs* is one ``(cost, on_complete, cancel_requested)`` triple
        per follower, in join order; the new followers are prepended
        ahead of any follower that coalesced later, preserving fan-out
        order.  Counters are untouched (the attachments were already
        counted), and any remaining virtual pin on the key is dropped —
        the materialized followers carry the waiting from here.
        """
        key = self._handle_key[handle]
        followers: list[_CacheFollower] = []
        for cost, on_complete, cancelled in specs:
            follower = _CacheFollower(key, cost, on_complete)
            follower.cancel_requested = cancelled
            followers.append(follower)
        entry = self._inflight[key]
        entry[1][:0] = followers
        self.follower_epoch += 1
        self._virtual.pop(key, None)
        return followers

    # -- inspection ----------------------------------------------------------

    def waiter_count(self, handle: object) -> int:
        """*Live* followers coalesced behind *handle* (0 for non-primaries).

        Cancelled followers no longer need the result (they resolve as
        cancelled either way), so they must not pin an otherwise
        cancellable primary — e.g. under ``cancel_unneeded``, a primary
        whose every waiter was itself cancelled should be cancelled too.
        Virtual (cohort-weighted) followers count while attached; the
        engine releases them when their members cancel.
        """
        key = self._handle_key.get(handle)
        if key is None:
            return 0
        return self._virtual.get(key, 0) + sum(
            1 for follower in self._inflight[key][1] if not follower.cancel_requested
        )

    @property
    def memo_size(self) -> int:
        return len(self._memo)

    @property
    def inflight_keys(self) -> int:
        return len(self._inflight)

    def __repr__(self) -> str:
        return (
            f"<QueryShareCache memo={self.memo_size}/{self.memo_limit} "
            f"inflight={self.inflight_keys} hits={self.hits} "
            f"misses={self.misses} coalesced={self.coalesced}>"
        )
