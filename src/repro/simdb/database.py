"""Database servers: the external systems that execute foreign tasks.

Two implementations of the same submit/complete interface:

* :class:`IdealDatabase` — the *unbounded resources* setting of section 5:
  every unit of processing takes exactly one tick of simulated time and
  any number of units proceed in parallel.  Response times read off this
  database are the paper's **TimeInUnits**.
* :class:`SimulatedDatabase` — the *bounded resources* setting: a physical
  model in the style of [ACL87] with ``num_cpus`` CPU servers and
  ``num_disks`` disk servers behind FCFS queues.  Each unit of processing
  fetches ``unit_io_cost`` pages (each hits the buffer with probability
  ``%IO_hit``, otherwise pays ``IO_delay`` on a disk) and then consumes
  ``unit_cpu_cost`` quanta of CPU.  The clock is in milliseconds; response
  times are the paper's **TimeInSeconds** after division by 1000.

Both track Gmpl — the database multiprogramming level, i.e. the number of
queries with a unit in process — as a time-weighted average, which the
analytical model of section 5 consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simdb.des import Simulation
from repro.simdb.query import CompletionCallback, QueryHandle
from repro.simdb.rng import derive_rng

__all__ = [
    "DbParams",
    "DatabaseServer",
    "IdealDatabase",
    "SimulatedDatabase",
    "ProfiledDatabase",
]


@dataclass(frozen=True)
class DbParams:
    """Physical parameters of the simulated database (Table 1, last rows).

    ``cpu_ms`` is a calibration constant not in Table 1: the wall-clock
    duration of one CPU quantum.  The default (8 ms) makes the Db curve
    span roughly 10–100 ms over Gmpl 0–35, the range of the paper's
    Figure 9(a).
    """

    num_cpus: int = 4
    num_disks: int = 10
    unit_cpu_cost: int = 1
    unit_io_cost: int = 1
    pct_io_hit: float = 50.0
    io_delay_ms: float = 5.0
    cpu_ms: float = 8.0
    #: probability that a query errors at completion (failure injection for
    #: the paper's "database is down" scenario); work is still consumed.
    failure_prob: float = 0.0

    def expected_unit_service_ms(self) -> float:
        """Mean resource demand of one unit at zero contention."""
        miss = 1.0 - self.pct_io_hit / 100.0
        return self.unit_cpu_cost * self.cpu_ms + self.unit_io_cost * miss * self.io_delay_ms

    def max_unit_throughput_per_ms(self) -> float:
        """Saturation throughput in units per millisecond (bottleneck law)."""
        cpu_capacity = self.num_cpus / (self.unit_cpu_cost * self.cpu_ms)
        miss = 1.0 - self.pct_io_hit / 100.0
        disk_demand = self.unit_io_cost * miss * self.io_delay_ms
        disk_capacity = self.num_disks / disk_demand if disk_demand > 0 else float("inf")
        return min(cpu_capacity, disk_capacity)


class DatabaseServer:
    """Common bookkeeping: Gmpl tracking, work accounting, failure draws."""

    def __init__(self, sim: Simulation, failure_prob: float = 0.0, seed: int = 0):
        if not 0.0 <= failure_prob <= 1.0:
            raise ValueError(f"failure_prob must be in [0, 1], got {failure_prob}")
        self.sim = sim
        self._query_seq = 0
        self.total_units = 0
        self.queries_completed = 0
        self.queries_cancelled = 0
        self.queries_failed = 0
        self.failure_prob = failure_prob
        self._failure_rng = derive_rng(seed, "db-failures")
        self._active = 0
        self._gmpl_integral = 0.0
        self._gmpl_last_change = sim.now

    # -- Gmpl accounting ----------------------------------------------------

    def _change_active(self, delta: int) -> None:
        now = self.sim.now
        self._gmpl_integral += self._active * (now - self._gmpl_last_change)
        self._gmpl_last_change = now
        self._active += delta

    @property
    def gmpl(self) -> int:
        """Current multiprogramming level (queries with a unit in process)."""
        return self._active

    def mean_gmpl(self, since: float = 0.0) -> float:
        """Time-weighted mean Gmpl from *since* until now."""
        elapsed = self.sim.now - since
        if elapsed <= 0:
            return 0.0
        integral = self._gmpl_integral + self._active * (self.sim.now - self._gmpl_last_change)
        return integral / elapsed

    # -- submission ----------------------------------------------------------

    def submit(self, cost: int, on_complete: CompletionCallback) -> QueryHandle:
        """Dispatch a query of *cost* units; *on_complete* fires once."""
        if cost < 1:
            raise ValueError(f"query cost must be >= 1, got {cost}")
        self._query_seq += 1
        handle = QueryHandle(self._query_seq, cost, self.sim.now)
        self._change_active(+1)
        self._start_unit(handle, on_complete)
        return handle

    def _start_unit(self, handle: QueryHandle, on_complete: CompletionCallback) -> None:
        raise NotImplementedError

    def _unit_finished(self, handle: QueryHandle, on_complete: CompletionCallback) -> None:
        handle.processed += 1
        self.total_units += 1
        if handle.processed >= handle.cost:
            self._finish(handle, on_complete, completed=True)
        elif handle.cancel_requested:
            self._finish(handle, on_complete, completed=False)
        else:
            self._start_unit(handle, on_complete)

    def _finish(self, handle: QueryHandle, on_complete: CompletionCallback, completed: bool) -> None:
        handle.finished = True
        self._change_active(-1)
        if completed:
            self.queries_completed += 1
            if self.failure_prob > 0 and self._failure_rng.random() < self.failure_prob:
                # The database did the work but the query errored (timeout,
                # deadlock victim, replica down): the caller sees a failure.
                handle.failed = True
                self.queries_failed += 1
        else:
            self.queries_cancelled += 1
        on_complete(handle.processed, completed)


class IdealDatabase(DatabaseServer):
    """Unbounded resources: one unit of processing per tick, full parallelism."""

    def __init__(
        self,
        sim: Simulation,
        unit_duration: float = 1.0,
        failure_prob: float = 0.0,
        seed: int = 0,
    ):
        super().__init__(sim, failure_prob, seed)
        if unit_duration <= 0:
            raise ValueError(f"unit_duration must be positive, got {unit_duration}")
        self.unit_duration = unit_duration

    def _start_unit(self, handle: QueryHandle, on_complete: CompletionCallback) -> None:
        self.sim.schedule(self.unit_duration, lambda: self._unit_finished(handle, on_complete))


class SimulatedDatabase(DatabaseServer):
    """Bounded resources: CPU and disk service queues per [ACL87]."""

    def __init__(self, sim: Simulation, params: DbParams | None = None, seed: int = 0):
        params = params or DbParams()
        super().__init__(sim, params.failure_prob, seed)
        # Imported here to avoid a hard dependency for IdealDatabase users.
        from repro.simdb.resource import ServiceCenter

        self.params = params
        self.cpus = ServiceCenter(sim, self.params.num_cpus, "cpus")
        self.disks = ServiceCenter(sim, self.params.num_disks, "disks")
        self._rng = derive_rng(seed, "simdb", "buffer")

    def _start_unit(self, handle: QueryHandle, on_complete: CompletionCallback) -> None:
        self._fetch_pages(handle, on_complete, remaining=self.params.unit_io_cost)

    def _fetch_pages(self, handle: QueryHandle, on_complete: CompletionCallback, remaining: int) -> None:
        if remaining <= 0:
            self.cpus.request(
                self.params.unit_cpu_cost * self.params.cpu_ms,
                lambda: self._unit_finished(handle, on_complete),
            )
            return
        hit = self._rng.random() < self.params.pct_io_hit / 100.0
        if hit:
            # Buffer hit: no disk visit; continue with the next page now.
            self._fetch_pages(handle, on_complete, remaining - 1)
        else:
            self.disks.request(
                self.params.io_delay_ms,
                lambda: self._fetch_pages(handle, on_complete, remaining - 1),
            )


class ProfiledDatabase(DatabaseServer):
    """Analytic stand-in calibrated by an empirical Db function.

    Each unit of processing takes ``Db(Gmpl)`` milliseconds at the current
    multiprogramming level — the contention model of Equation (4) applied
    directly, without simulating individual CPU/disk visits.  It runs
    orders of magnitude fewer events than :class:`SimulatedDatabase` while
    preserving the load/response shape of the profiled server, which makes
    it the cheap substrate for large capacity sweeps.
    """

    def __init__(self, sim: Simulation, db_function, failure_prob: float = 0.0, seed: int = 0):
        super().__init__(sim, failure_prob, seed)
        if not callable(db_function):
            raise TypeError(f"db_function must be callable, got {db_function!r}")
        self.db_function = db_function

    def _start_unit(self, handle: QueryHandle, on_complete: CompletionCallback) -> None:
        # The submitting query is already counted in Gmpl (>= 1 here).
        unit_ms = float(self.db_function(self.gmpl))
        if unit_ms <= 0:
            raise ValueError(f"Db function returned non-positive UnitTime {unit_ms}")
        self.sim.schedule(unit_ms, lambda: self._unit_finished(handle, on_complete))
