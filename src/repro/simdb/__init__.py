"""Simulated database substrate: DES kernel, service queues, DB servers."""

from repro.simdb.database import (
    DatabaseServer,
    DbParams,
    IdealDatabase,
    ProfiledDatabase,
    QueryShareCache,
    SimulatedDatabase,
)
from repro.simdb.des import Event, Simulation
from repro.simdb.profiler import DbFunction, profile_database
from repro.simdb.query import QueryHandle
from repro.simdb.resource import ServiceCenter
from repro.simdb.rng import derive_rng, exponential

__all__ = [
    "Simulation",
    "Event",
    "ServiceCenter",
    "QueryHandle",
    "DatabaseServer",
    "IdealDatabase",
    "SimulatedDatabase",
    "ProfiledDatabase",
    "QueryShareCache",
    "DbParams",
    "DbFunction",
    "profile_database",
    "derive_rng",
    "exponential",
]
