"""Empirical profiling of the simulated database: the Db function.

The analytical model of section 5 needs ``Db``, "the function mapping the
multi-programming level of the database to the response time of the
database per unit of processing", which "is empirically determined for
each database" — the paper's Figure 9(a).

:func:`profile_database` measures it with a closed-loop experiment: for
each multiprogramming level *G*, keep exactly *G* one-unit queries in
process (resubmitting on completion) and record the mean response time per
query after a warm-up period.  :class:`DbFunction` wraps the resulting
points with monotone piecewise-linear interpolation, extrapolating the
last segment's slope beyond the profiled range.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Sequence

from repro.simdb.database import DbParams, SimulatedDatabase
from repro.simdb.des import Simulation

__all__ = ["DbFunction", "profile_database"]


@dataclass(frozen=True)
class DbFunction:
    """Piecewise-linear Gmpl → UnitTime(ms) mapping (the Db of Eq. 4/6)."""

    points: tuple[tuple[float, float], ...]

    def __post_init__(self):
        if len(self.points) < 1:
            raise ValueError("DbFunction needs at least one point")
        gmpls = [g for g, _ in self.points]
        if sorted(gmpls) != gmpls or len(set(gmpls)) != len(gmpls):
            raise ValueError("DbFunction points must have strictly increasing Gmpl")

    def __call__(self, gmpl: float) -> float:
        """Interpolated UnitTime at the given multiprogramming level."""
        points = self.points
        if gmpl <= points[0][0]:
            return points[0][1]
        for (g0, t0), (g1, t1) in zip(points, points[1:]):
            if gmpl <= g1:
                frac = (gmpl - g0) / (g1 - g0)
                return t0 + frac * (t1 - t0)
        return self._extrapolate(gmpl)

    def _extrapolate(self, gmpl: float) -> float:
        (g0, t0), (g1, t1) = self.points[-2:] if len(self.points) >= 2 else ((0.0, self.points[0][1]), self.points[0])
        slope = (t1 - t0) / (g1 - g0) if g1 > g0 else 0.0
        return t1 + slope * (gmpl - g1)

    @property
    def max_gmpl(self) -> float:
        return self.points[-1][0]

    @property
    def zero_load_unit_time(self) -> float:
        return self.points[0][1]

    @property
    def tail_slope(self) -> float:
        """ms of UnitTime per extra unit of Gmpl beyond the profiled range."""
        if len(self.points) < 2:
            return 0.0
        (g0, t0), (g1, t1) = self.points[-2:]
        return (t1 - t0) / (g1 - g0)


def profile_database(
    params: DbParams | None = None,
    gmpl_levels: Sequence[int] = (1, 2, 4, 6, 8, 12, 16, 20, 25, 30, 35),
    completions_per_level: int = 2000,
    warmup: int = 200,
    seed: int = 0,
    mode: str = "closed",
    utilizations: Sequence[float] = (0.1, 0.25, 0.4, 0.55, 0.7, 0.8, 0.88, 0.94),
) -> DbFunction:
    """Measure the Db function of a simulated database (Figure 9(a)).

    ``mode="closed"`` (the paper's figure): for each Gmpl level, a fresh
    simulation keeps exactly that many one-unit queries circulating; the
    mean response of post-warm-up completions is the UnitTime sample.

    ``mode="open"``: one-unit queries arrive in a Poisson stream at a
    fraction of the database's saturation throughput; the point is
    (measured mean Gmpl, mean response).  Open profiling additionally
    captures queueing *variance* under bursty arrivals, which makes the
    analytical model's predictions noticeably tighter for open systems
    (see the profiling-mode ablation benchmark); ``gmpl_levels`` is
    ignored and ``utilizations`` drives the sweep.
    """
    params = params or DbParams()
    points: list[tuple[float, float]] = []
    if mode == "closed":
        for level in gmpl_levels:
            if level < 1:
                raise ValueError(f"Gmpl level must be >= 1, got {level}")
            points.append(
                (float(level), _measure_level(params, level, completions_per_level, warmup, seed))
            )
    elif mode == "open":
        capacity = params.max_unit_throughput_per_ms()
        for utilization in utilizations:
            if not 0 < utilization < 1:
                raise ValueError(f"utilization must be in (0, 1), got {utilization}")
            gmpl, unit_time = _measure_open(
                params, utilization * capacity, completions_per_level, warmup, seed
            )
            if points and gmpl <= points[-1][0]:
                continue  # measurement noise collapsed two loads; keep monotone
            points.append((gmpl, unit_time))
    else:
        raise ValueError(f"mode must be 'closed' or 'open', got {mode!r}")
    return DbFunction(tuple(points))


def _measure_level(
    params: DbParams, level: int, completions_target: int, warmup: int, seed: int
) -> float:
    sim = Simulation()
    database = SimulatedDatabase(sim, params, seed=seed * 1000 + level)
    samples: list[float] = []
    completions = 0

    def circulate() -> None:
        submit_time = sim.now

        def on_complete(processed: int, completed: bool) -> None:
            nonlocal completions
            completions += 1
            if completions > warmup:
                samples.append(sim.now - submit_time)
            if completions < completions_target + warmup:
                circulate()

        database.submit(1, on_complete)

    for _ in range(level):
        circulate()
    sim.run()
    return mean(samples)


def _measure_open(
    params: DbParams, rate_per_ms: float, completions_target: int, warmup: int, seed: int
) -> tuple[float, float]:
    from repro.simdb.rng import derive_rng

    sim = Simulation()
    database = SimulatedDatabase(sim, params, seed=seed + 77)
    arrival_rng = derive_rng(seed, "profile-open", round(rate_per_ms, 9))
    samples: list[float] = []

    def submit_one() -> None:
        submit_time = sim.now

        def on_complete(processed: int, completed: bool) -> None:
            samples.append(sim.now - submit_time)

        database.submit(1, on_complete)

    arrival_time = 0.0
    for _ in range(completions_target + warmup):
        arrival_time += arrival_rng.expovariate(rate_per_ms)
        sim.schedule_at(arrival_time, submit_one)
    sim.run()
    steady = samples[warmup:] if len(samples) > warmup else samples
    return database.mean_gmpl(), mean(steady)
