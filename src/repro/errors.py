"""Exception hierarchy for the repro package."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SchemaError",
    "CycleError",
    "UnknownAttributeError",
    "ExecutionError",
    "IllegalTransitionError",
    "SimulationError",
    "StrategyError",
    "ModelError",
    "GenerationError",
]


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SchemaError(ReproError):
    """A decision-flow schema is malformed."""


class CycleError(SchemaError):
    """The dependency graph of a schema is cyclic (not well-formed)."""


class UnknownAttributeError(SchemaError):
    """A task or condition references an attribute the schema does not define."""


class ExecutionError(ReproError):
    """The execution engine reached an inconsistent state."""


class IllegalTransitionError(ExecutionError):
    """An attribute attempted a transition the Fig.-3 automaton forbids."""


class SimulationError(ReproError):
    """The discrete-event simulation kernel was misused."""


class StrategyError(ReproError):
    """An execution-strategy string or combination is invalid."""


class ModelError(ReproError):
    """The analytical model could not be applied (e.g. saturated database)."""


class GenerationError(ReproError):
    """The workload generator was given unsatisfiable parameters."""
