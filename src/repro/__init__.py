"""repro — decision flows: cost-based optimization of data-intensive decision DAGs.

A faithful, self-contained reproduction of

    R. Hull, F. Llirbat, B. Kumar, G. Zhou, G. Dong, J. Su.
    "Optimization Techniques for Data-Intensive Decision Flows."
    ICDE 2000, pp. 281-292.

The package provides:

* :mod:`repro.core` — the decision-flow model (attributes, enabling
  conditions, tasks, modules, declarative snapshot semantics) and the
  optimizing execution engine (eager condition evaluation, forward and
  backward propagation, speculative execution, scheduling heuristics).
* :mod:`repro.simdb` — the simulated database substrate: a deterministic
  discrete-event kernel, multi-server FCFS service centers, the ideal and
  bounded-resource database servers, and the empirical Db profiler.
* :mod:`repro.workload` — the Table-1 schema-pattern generator.
* :mod:`repro.analysis` — the analytical throughput model (Equations 1-6),
  guideline maps, and strategy tuning.
* :mod:`repro.api` — the high-level entry point: :class:`ExecutionConfig`,
  the named-backend registry, and the multi-instance
  :class:`DecisionService` facade.
* :mod:`repro.bench` — experiment runners and reporting shared by the
  benchmark suite and the examples.

Quickstart::

    from repro import DecisionService, ExecutionConfig, PatternParams, generate_pattern

    pattern = generate_pattern(PatternParams(nb_rows=4, pct_enabled=50))
    service = DecisionService(pattern.schema, ExecutionConfig.from_code("PCE0"))
    handle = service.submit(pattern.source_values)
    print(handle.result(), handle.metrics.work_units, handle.metrics.elapsed)

The one-shot helper :func:`run_once` wraps exactly that recipe for a
generated pattern on the ideal backend.
"""

from repro.core import (
    ALL_STRATEGY_CODES,
    And,
    Attribute,
    AttributeState,
    Comparison,
    CompleteSnapshot,
    Condition,
    BatchedEngine,
    CompiledPlan,
    DecisionFlowSchema,
    Engine,
    FALSE,
    InstanceMetrics,
    IsException,
    IsNull,
    Literal,
    ResultShare,
    Module,
    Not,
    Op,
    Or,
    QueryTask,
    Rule,
    RuleSetTask,
    Strategy,
    SynthesisTask,
    TRUE,
    UserPredicate,
    attr,
    check_against_snapshot,
    config_from_dict,
    config_to_dict,
    dumps_schema,
    dumps_strategy,
    evaluate_schema,
    expand_pattern,
    flatten,
    loads_schema,
    loads_strategy,
    query,
    rule_set,
    schema_from_dict,
    schema_to_dict,
    source_attribute,
    strategy_from_dict,
    strategy_to_dict,
    summarize,
    synthesize,
)
from repro.nulls import NULL, ExceptionValue, is_exception, is_null
from repro.simdb import (
    DbFunction,
    DbParams,
    IdealDatabase,
    ProfiledDatabase,
    QueryShareCache,
    Simulation,
    SimulatedDatabase,
    profile_database,
)
from repro.api import (
    Backend,
    DecisionService,
    ExecutionConfig,
    InstanceHandle,
    available_backends,
    create_backend,
    register_backend,
)
from repro.runtime import (
    MergedEventLog,
    ShardStats,
    ShardedDecisionService,
    ShardedInstanceHandle,
    create_service,
)
from repro.workload import PatternParams, GeneratedPattern, generate_pattern

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # model
    "Attribute",
    "source_attribute",
    "Condition",
    "Literal",
    "TRUE",
    "FALSE",
    "And",
    "Or",
    "Not",
    "Comparison",
    "IsNull",
    "IsException",
    "UserPredicate",
    "attr",
    "Op",
    "QueryTask",
    "SynthesisTask",
    "query",
    "synthesize",
    "Rule",
    "RuleSetTask",
    "rule_set",
    "Module",
    "flatten",
    "DecisionFlowSchema",
    "dumps_schema",
    "loads_schema",
    "schema_to_dict",
    "schema_from_dict",
    "dumps_strategy",
    "loads_strategy",
    "strategy_to_dict",
    "strategy_from_dict",
    "config_to_dict",
    "config_from_dict",
    "AttributeState",
    "CompleteSnapshot",
    "evaluate_schema",
    "check_against_snapshot",
    "NULL",
    "is_null",
    "ExceptionValue",
    "is_exception",
    # engine
    "Engine",
    "BatchedEngine",
    "CompiledPlan",
    "ResultShare",
    "Strategy",
    "expand_pattern",
    "ALL_STRATEGY_CODES",
    "InstanceMetrics",
    "summarize",
    # substrate
    "Simulation",
    "IdealDatabase",
    "SimulatedDatabase",
    "ProfiledDatabase",
    "QueryShareCache",
    "DbParams",
    "DbFunction",
    "profile_database",
    # high-level api
    "DecisionService",
    "ExecutionConfig",
    "InstanceHandle",
    "Backend",
    "register_backend",
    "create_backend",
    "available_backends",
    # sharded runtime
    "ShardedDecisionService",
    "ShardedInstanceHandle",
    "ShardStats",
    "MergedEventLog",
    "create_service",
    # workload
    "PatternParams",
    "GeneratedPattern",
    "generate_pattern",
    "run_once",
]


def run_once(pattern: GeneratedPattern, strategy: Strategy) -> InstanceMetrics:
    """Execute one instance of a generated pattern on a fresh ideal backend.

    Thin shim over the canonical :class:`repro.api.DecisionService` path,
    kept for backward compatibility with the original low-level API;
    returns the instance metrics (``work_units`` is the paper's Work,
    ``elapsed`` its TimeInUnits, since the ideal backend's unit duration
    is 1).
    """
    service = DecisionService(pattern.schema, ExecutionConfig(strategy=strategy))
    return service.submit(pattern.source_values).wait()
