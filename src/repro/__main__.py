"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro list                 # show available experiments
    python -m repro run fig5a            # run one experiment, print it
    python -m repro run all --seeds 4    # run everything
    python -m repro run fig9a --out results/

Each experiment prints its table (and an ASCII shape chart) and, with
``--out``, also writes it to ``<out>/<figure_id>.txt``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench import figures

#: name → (callable accepting seeds, takes_seeds)
EXPERIMENTS: dict[str, tuple] = {
    "table1": (figures.table1, False),
    "fig5a": (figures.fig5a, True),
    "fig5b": (figures.fig5b, True),
    "fig6a": (figures.fig6a, True),
    "fig6b": (figures.fig6b, True),
    "fig7a": (figures.fig7a, True),
    "fig7b": (figures.fig7b, True),
    "fig8a": (figures.fig8a, True),
    "fig8b": (figures.fig8b, True),
    "fig9a": (figures.fig9a, False),
    "fig9b": (figures.fig9b, True),
    "ablation-halt": (figures.ablation_halt_policy, True),
    "ablation-cancel": (figures.ablation_cancel_unneeded, True),
    "ablation-profile": (figures.ablation_profile_mode, True),
    "ablation-sharing": (figures.ablation_sharing, False),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the evaluation of Hull et al., ICDE 2000.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", choices=[*EXPERIMENTS, "all"])
    run.add_argument(
        "--seeds", type=int, default=6, help="pattern seeds to average over (default 6)"
    )
    run.add_argument(
        "--out", type=Path, default=None, help="directory to write <figure_id>.txt files"
    )
    return parser


def _slug(figure_id: str) -> str:
    return figure_id.lower().replace(" ", "_").replace("(", "").replace(")", "")


def run_experiment(name: str, seeds: int, out: Path | None) -> None:
    fn, takes_seeds = EXPERIMENTS[name]
    result = fn(tuple(range(seeds))) if takes_seeds else fn()
    text = result.render()
    print(text)
    print()
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        (out / f"{_slug(result.figure_id)}.txt").write_text(text + "\n")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, (fn, _) in EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:<{width}}  {doc}")
        return 0
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        run_experiment(name, args.seeds, args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
