"""Command-line entry point: paper experiments and ad-hoc simulations.

Usage::

    python -m repro list                 # show available experiments
    python -m repro run fig5a            # run one experiment, print it
    python -m repro run all --seeds 4    # run everything
    python -m repro run fig9a --out results/ --json

    python -m repro simulate --code PSE80 --backend bounded --rate 10 \\
        --instances 200                  # drive a DecisionService directly
    python -m repro simulate --code PSE80 --instances 10000 \\
        --shards 4 --executor process    # persistent shard-worker fleet

    python -m repro serve --port 8080 --code PSE80 --query-cache \\
        --dispatch pooled --db runs.sqlite   # streaming daemon (HTTP/JSON)

Each experiment prints its table (and an ASCII shape chart) and, with
``--out``, also writes it to ``<out>/<figure_id>.txt``.  ``--json``
switches to machine-readable output (and ``.json`` files with ``--out``).

``simulate`` runs a Table-1 workload pattern through the high-level
:class:`repro.api.DecisionService` on any registered backend, either as a
closed loop (``--concurrency``) or an open Poisson stream (``--rate``);
``--shards N`` partitions the population across the sharded runtime
(``--executor process`` keeps one long-lived worker process per shard;
``--placement least-loaded`` rebalances skewed populations; with
``--query-cache`` the shards share a cross-shard L2 result tier).

``serve`` exposes the same workload as a long-running HTTP/JSON daemon
(:mod:`repro.server`): streaming submissions with admission control and
backpressure, NDJSON event streaming, a metrics endpoint, and SQLite
persistence of completed runs (``--db``).  Ctrl-C shuts it down
gracefully (drain, flush, exit code 130).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench import figures

#: name → (callable accepting seeds, takes_seeds)
EXPERIMENTS: dict[str, tuple] = {
    "table1": (figures.table1, False),
    "fig5a": (figures.fig5a, True),
    "fig5b": (figures.fig5b, True),
    "fig6a": (figures.fig6a, True),
    "fig6b": (figures.fig6b, True),
    "fig7a": (figures.fig7a, True),
    "fig7b": (figures.fig7b, True),
    "fig8a": (figures.fig8a, True),
    "fig8b": (figures.fig8b, True),
    "fig9a": (figures.fig9a, False),
    "fig9b": (figures.fig9b, True),
    "ablation-halt": (figures.ablation_halt_policy, True),
    "ablation-cancel": (figures.ablation_cancel_unneeded, True),
    "ablation-profile": (figures.ablation_profile_mode, True),
    "ablation-sharing": (figures.ablation_sharing, False),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the evaluation of Hull et al., ICDE 2000.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", choices=[*EXPERIMENTS, "all"])
    run.add_argument(
        "--seeds", type=int, default=6, help="pattern seeds to average over (default 6)"
    )
    run.add_argument(
        "--out", type=Path, default=None, help="directory to write <figure_id>.txt files"
    )
    run.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of rendered tables",
    )

    simulate = sub.add_parser(
        "simulate", help="run a generated workload through the repro.api DecisionService"
    )
    _add_workload_arguments(simulate)
    simulate.add_argument(
        "--instances", type=int, default=25, help="instances to run (default 25)"
    )
    simulate.add_argument(
        "--rate",
        type=float,
        default=None,
        help="open system: Poisson arrivals per second (1s = 1000 clock ticks); "
        "omit for a closed loop",
    )
    simulate.add_argument(
        "--concurrency",
        type=int,
        default=1,
        help="closed system: instances kept in flight (default 1; ignored with --rate)",
    )
    simulate.add_argument(
        "--trace",
        type=Path,
        default=None,
        help="write the run's flight-recorder spans as Chrome-trace JSON "
        "(loadable in about:tracing / Perfetto; implies --observe)",
    )
    simulate.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )

    serve = sub.add_parser(
        "serve",
        help="run the streaming decision-service daemon (HTTP/JSON over stdlib)",
    )
    _add_workload_arguments(serve)
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve.add_argument(
        "--port", type=int, default=8080, help="bind port (default 8080; 0 = ephemeral)"
    )
    serve.add_argument(
        "--db",
        type=Path,
        default=None,
        help="SQLite path for completed run records (restarts keep serving "
        "finished work); omit to run without persistence",
    )
    serve.add_argument(
        "--high-water",
        type=int,
        default=256,
        help="arrival-queue bound: past it, POST /instances gets 429 with a "
        "Retry-After derived from the observed drain rate (default 256)",
    )
    serve.add_argument(
        "--stall-after",
        type=float,
        default=None,
        help="heartbeat age (wall seconds) past which GET /healthz reports "
        "the drain loop wedged with a 503 (default 30)",
    )
    serve.add_argument(
        "--ticks-per-second",
        type=float,
        default=1000.0,
        help="wall-to-DES clock scale: simulated ticks per wall second "
        "(default 1000, the ms-clock convention)",
    )
    serve.add_argument(
        "--json", action="store_true", help="emit the startup banner as JSON"
    )
    return parser


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    """Flags shared by ``simulate`` and ``serve``: pattern + execution recipe."""
    parser.add_argument(
        "--code", default="PCE0", help="strategy code, e.g. PSE80 (default PCE0)"
    )
    parser.add_argument(
        "--backend",
        default="ideal",
        help="registered backend name: ideal, bounded, profiled (default ideal)",
    )
    parser.add_argument("--nb-rows", type=int, default=4, help="pattern rows (default 4)")
    parser.add_argument(
        "--nb-nodes", type=int, default=64, help="pattern internal nodes (default 64)"
    )
    parser.add_argument(
        "--pct-enabled", type=float, default=50.0, help="%% enabled nodes (default 50)"
    )
    parser.add_argument(
        "--pattern-seed", type=int, default=0, help="workload generator seed (default 0)"
    )
    parser.add_argument(
        "--engine",
        choices=("reference", "batched"),
        default="reference",
        help="execution engine: the name-keyed reference engine (default) or "
        "the compiled-plan batched engine (identical results; faster on "
        "multi-instance sweeps, required for --cohorts to take effect)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="hash-partition instances across N independent engine+DES shards "
        "(default 1 = a plain DecisionService)",
    )
    parser.add_argument(
        "--executor",
        choices=("serial", "process"),
        default="serial",
        help="how to drive the shards: in-process ('serial', deterministic "
        "default) or one long-lived worker process per shard ('process'; "
        "identical results, incremental — 'serve' streams its drain epochs "
        "to the persistent fleet)",
    )
    parser.add_argument(
        "--placement",
        choices=("hash", "least-loaded"),
        default="hash",
        help="shard routing policy: stable CRC-32 homes ('hash', default) or "
        "skew rebalancing toward the shard with the fewest instances in "
        "flight ('least-loaded'; deterministic given submission order)",
    )
    parser.add_argument(
        "--halt", choices=("cancel", "drain"), default="cancel", help="halt policy"
    )
    parser.add_argument(
        "--dispatch",
        choices=("per-event", "pooled"),
        default="per-event",
        help="DES drain mode: step one event at a time ('per-event', the "
        "reference) or consume same-instant event pools in one pass "
        "('pooled'; identical results — pays off on pool-heavy sweeps, "
        "best combined with --query-cache)",
    )
    parser.add_argument(
        "--query-cache",
        action="store_true",
        help="coalesce identical in-flight queries into one database dispatch "
        "and memo-serve repeated ones (per shard; counters in the summary)",
    )
    parser.add_argument(
        "--cohorts",
        action="store_true",
        help="dedupe whole instances on the batched engine: same-instant "
        "submissions from one start valuation run once and fan out, "
        "splitting off on any divergence (identical results; "
        "hit/split counters in the summary)",
    )
    parser.add_argument(
        "--share", action="store_true", help="share query results across instances"
    )
    parser.add_argument(
        "--observe",
        action="store_true",
        help="arm the repro.obs layer: per-phase span tracing plus a "
        "mergeable metrics registry (counters/gauges/latency histograms); "
        "identical results, small constant overhead",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="backend/arrival seed (default 0)"
    )


def _slug(figure_id: str) -> str:
    return figure_id.lower().replace(" ", "_").replace("(", "").replace(")", "")


def run_experiment(name: str, seeds: int, out: Path | None, as_json: bool = False) -> None:
    fn, takes_seeds = EXPERIMENTS[name]
    result = fn(tuple(range(seeds))) if takes_seeds else fn()
    text = result.render_json() if as_json else result.render()
    print(text)
    print()
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        extension = "json" if as_json else "txt"
        (out / f"{_slug(result.figure_id)}.{extension}").write_text(text + "\n")


def _build_workload(args: argparse.Namespace):
    """The (pattern, config) pair shared by ``simulate`` and ``serve``."""
    from repro.api import ExecutionConfig
    from repro.workload.generator import generate_pattern
    from repro.workload.params import PatternParams

    params = PatternParams(
        nb_nodes=args.nb_nodes,
        nb_rows=args.nb_rows,
        pct_enabled=args.pct_enabled,
        seed=args.pattern_seed,
    )
    pattern = generate_pattern(params)
    config = ExecutionConfig.from_code(
        args.code,
        halt_policy=args.halt,
        share_results=args.share,
        backend=args.backend,
        engine=args.engine,
        shards=args.shards,
        executor=args.executor,
        placement=args.placement,
        dispatch=args.dispatch,
        query_cache=args.query_cache,
        cohorts=args.cohorts,
        # --trace needs the recorder armed even without an explicit --observe.
        observe=args.observe or getattr(args, "trace", None) is not None,
        # Every built-in backend accepts a seed; third-party factories may
        # not, so only forward it where it is known to be understood.
        backend_options=(
            {"seed": args.seed}
            if args.backend in ("ideal", "bounded", "profiled")
            else {}
        ),
    )
    return pattern, config


def run_simulate(args: argparse.Namespace) -> int:
    from repro.runtime import ShardedDecisionService, create_service
    from repro.simdb.rng import derive_rng

    pattern, config = _build_workload(args)
    service = create_service(pattern.schema, config)

    if args.rate is not None:
        arrival_rng = derive_rng(args.seed, "simulate-arrivals", args.code, args.rate)
        arrival_time, arrivals = 0.0, []
        for _ in range(args.instances):
            arrival_time += arrival_rng.expovariate(args.rate / 1000.0)
            arrivals.append(arrival_time)
        service.submit_stream(arrivals, values=pattern.source_values)
        mode = f"open @ {args.rate:g}/s"
    else:
        service.run_closed(
            args.instances, concurrency=args.concurrency, values=pattern.source_values
        )
        mode = f"closed x{args.concurrency}"

    summary = service.summary()
    sharded = isinstance(service, ShardedDecisionService)
    if sharded:
        time_unit = service.time_unit()
        mean_gmpl = service.mean_gmpl()
        mode = f"{mode} [{config.shards} shards, {config.executor}]"
        if config.placement != "hash":
            mode = f"{mode[:-1]}, {config.placement}]"
    else:
        time_unit = service.backend.time_unit
        mean_gmpl = service.database.mean_gmpl()
    payload = {
        "schema": pattern.schema.name,
        "strategy": config.code,
        "backend": config.backend,
        "engine": config.engine,
        "time_unit": time_unit,
        "mode": mode,
        "shards": config.shards,
        "executor": config.executor,
        "placement": config.placement,
        "instances": summary.count,
        "mean_work": summary.mean_work,
        "mean_elapsed": summary.mean_elapsed,
        "mean_queries_launched": summary.mean_queries_launched,
        "total_work": summary.total_work,
        "sim_time": service.now,
        "mean_gmpl": mean_gmpl,
        "dispatch": config.dispatch,
        "query_cache": config.query_cache,
        "query_cache_hits": summary.query_cache_hits,
        "query_cache_misses": summary.query_cache_misses,
        "query_cache_coalesced": summary.query_cache_coalesced,
        "query_cache_l2_hits": summary.query_cache_l2_hits,
        "query_cache_l2_misses": summary.query_cache_l2_misses,
        "query_cache_l2_promotions": summary.query_cache_l2_promotions,
        "cohorts": config.cohorts,
        "cohort_hits": summary.cohort_hits,
        "cohort_splits": summary.cohort_splits,
        **service.dispatch_stats(),
        "observe": config.observe,
    }
    if config.observe:
        payload["observability"] = service.observability()
    if args.trace is not None:
        args.trace.parent.mkdir(parents=True, exist_ok=True)
        trace = service.chrome_trace()
        args.trace.write_text(json.dumps(trace) + "\n")
        payload["trace"] = {
            "path": str(args.trace),
            "events": len(trace["traceEvents"]),
        }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(
            f"{payload['schema']}: {payload['instances']} instances under "
            f"{payload['strategy']} on {payload['backend']} ({mode})"
        )
        print(
            f"  mean Work = {payload['mean_work']:.1f} units   "
            f"mean response = {payload['mean_elapsed']:.1f} {time_unit}"
        )
        print(
            f"  total work = {payload['total_work']} units   "
            f"sim time = {payload['sim_time']:.1f}   mean Gmpl = {payload['mean_gmpl']:.2f}"
        )
        if config.query_cache:
            print(
                f"  query cache: {payload['query_cache_hits']} hits   "
                f"{payload['query_cache_misses']} misses   "
                f"{payload['query_cache_coalesced']} coalesced"
            )
            if config.shards > 1:
                print(
                    f"  L2 tier: {payload['query_cache_l2_hits']} hits   "
                    f"{payload['query_cache_l2_misses']} misses   "
                    f"{payload['query_cache_l2_promotions']} promotions"
                )
        if config.cohorts:
            print(
                f"  cohorts: {payload['cohort_hits']} hits   "
                f"{payload['cohort_splits']} splits"
            )
        if config.dispatch == "pooled":
            print(
                f"  pooled dispatch: {payload['pooled_batches']} batches   "
                f"{payload['pooled_events']} events"
            )
        if args.trace is not None:
            print(
                f"  trace: {payload['trace']['events']} events -> "
                f"{payload['trace']['path']}"
            )
    if sharded:
        service.close()  # shut persistent shard workers down, if any
    return 0


def run_serve(args: argparse.Namespace) -> int:
    """The ``serve`` subcommand: daemon + HTTP front, until interrupted."""
    from repro.server import ServerDaemon, create_server

    pattern, config = _build_workload(args)
    extra = {} if args.stall_after is None else {"stall_after": args.stall_after}
    daemon = ServerDaemon(
        pattern.schema,
        config,
        db=None if args.db is None else str(args.db),
        high_water=args.high_water,
        default_values=pattern.source_values,
        ticks_per_second=args.ticks_per_second,
        **extra,
    )
    server = create_server(daemon, args.host, args.port)
    banner = {
        "serving": pattern.schema.name,
        "url": f"http://{args.host}:{server.port}",
        "strategy": config.code,
        "backend": config.backend,
        "shards": config.shards,
        "executor": config.executor,
        "placement": config.placement,
        "high_water": args.high_water,
        "db": None if args.db is None else str(args.db),
        "config_hash": daemon.config_digest,
    }
    if args.json:
        print(json.dumps(banner), flush=True)
    else:
        persistence = banner["db"] or "none (in-memory records only)"
        print(
            f"serving {banner['serving']} at {banner['url']} "
            f"({config.code} on {config.backend}, {config.shards} shard(s), "
            f"{config.executor} executor)\n"
            f"  persistence: {persistence}\n"
            f"  queue high-water mark: {args.high_water}  "
            f"config hash: {daemon.config_digest}\n"
            "  endpoints: POST /instances | GET /instances/<id> | "
            "GET /events | GET /metrics[?format=prometheus] | "
            "GET /trace | GET /healthz",
            flush=True,
        )
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        # Graceful exit on SIGINT (KeyboardInterrupt propagates to main):
        # stop accepting, drain every accepted instance, flush the store.
        server.shutdown()
        server.server_close()
        daemon.shutdown()
        stats = daemon.server_stats()
        closing = {
            "accepted": stats["accepted"],
            "completed": stats["completed"],
            "rejected": stats["rejected"],
            "persisted": stats["persisted"],
        }
        if args.json:
            print(json.dumps({"shutdown": closing}), flush=True)
        else:
            print(
                f"shut down cleanly: {closing['completed']}/{closing['accepted']} "
                f"accepted instances completed, {closing['persisted']} persisted, "
                f"{closing['rejected']} rejected",
                flush=True,
            )
    return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, (fn, _) in EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:<{width}}  {doc}")
        return 0
    if args.command == "simulate":
        return run_simulate(args)
    if args.command == "serve":
        return run_serve(args)
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        run_experiment(name, args.seeds, args.out, as_json=args.json)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except KeyboardInterrupt:
        # Long-running subcommands (serve, big simulates) are interrupted
        # with Ctrl-C in normal operation; exit with the conventional
        # 128+SIGINT code instead of a traceback.
        print("interrupted", file=sys.stderr)
        return 130
    except Exception as error:
        # Machine-readable mode promises machine-readable failures too.
        if getattr(args, "json", False):
            print(
                json.dumps(
                    {"error": {"type": type(error).__name__, "message": str(error)}}
                )
            )
            return 1
        raise


if __name__ == "__main__":
    sys.exit(main())
