"""The analytical model for finite database resources (section 5, Eq. 1-6).

Variables (per the paper):

* ``Th`` — throughput: decision-flow instances processed per second;
* ``Work`` — units of processing per instance;
* ``TimeInUnits`` — response time of an instance in units of processing;
* ``UnitTime`` — database response time per unit of processing (ms);
* ``Lmpl`` — per-instance multiprogramming level;
* ``Impl`` — instances in process in parallel;
* ``Gmpl`` — database multiprogramming level;
* ``Db``   — the empirical Gmpl → UnitTime function (Figure 9a).

The equations::

    (1) TimeInSeconds = TimeInUnits · UnitTime
    (2) Impl          = Th · TimeInSeconds            (Little's law)
    (3) Lmpl · TimeInSeconds = Work · UnitTime
    (4) UnitTime      = Db(Gmpl)
    (5) Gmpl          = Impl · Lmpl = Th · Work · UnitTime
    (6) UnitTime      = Db(Th · Work · UnitTime)

Equation (6) is a fixpoint in UnitTime; it has a solution exactly when the
offered load fits under the database's saturation throughput.  Its two
applications (both implemented here):

* given a target throughput, the **maximum Work** per instance for which
  (6) is solvable — the feasibility bound of Figure 9(b);
* given a strategy's (Work, TimeInUnits) profile, the **predicted
  TimeInSeconds** = TimeInUnits · UnitTime, used to pick the best
  execution strategy for the current load.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError
from repro.simdb.profiler import DbFunction

__all__ = ["ModelSolution", "AnalyticalModel"]

_MS_PER_S = 1000.0


@dataclass(frozen=True)
class ModelSolution:
    """A solution of Equation (6) for one operating point."""

    throughput_per_s: float
    work_units: float
    unit_time_ms: float
    gmpl: float
    extrapolated: bool  # Gmpl beyond the profiled range of Db

    def time_in_seconds(self, time_in_units: float) -> float:
        """Equation (1): predicted response time in seconds."""
        return time_in_units * self.unit_time_ms / _MS_PER_S

    def lmpl(self, time_in_units: float) -> float:
        """Per-instance multiprogramming level (from Eq. 3 with Eq. 1)."""
        return self.work_units / time_in_units if time_in_units > 0 else 0.0

    def impl(self, time_in_units: float) -> float:
        """Instances in parallel (Eq. 2)."""
        return self.throughput_per_s * self.time_in_seconds(time_in_units)


class AnalyticalModel:
    """Equation (1)-(6) calculator over an empirical Db function."""

    def __init__(self, db: DbFunction):
        self.db = db

    # -- Equation (6) -----------------------------------------------------

    def solve(self, throughput_per_s: float, work_units: float) -> ModelSolution | None:
        """Solve UnitTime = Db(Th·Work·UnitTime); None when saturated.

        Th·Work·UnitTime has UnitTime in *seconds* inside the Gmpl product
        (Gmpl is dimensionless), so the fixpoint reads
        ``u = Db(Th · W · u / 1000)`` with u in milliseconds.
        """
        if throughput_per_s < 0 or work_units < 0:
            raise ModelError("throughput and work must be non-negative")
        load = throughput_per_s * work_units / _MS_PER_S  # Gmpl per ms of UnitTime
        if load == 0:
            unit_time = self.db(0.0)
            return ModelSolution(throughput_per_s, work_units, unit_time, 0.0, False)

        # Saturation test: beyond the profiled range Db grows with the tail
        # slope s, so u = Db(load·u) eventually requires s·load < 1.
        if self.db.tail_slope * load >= 1.0:
            return None

        def gap(u: float) -> float:
            return self.db(load * u) - u

        low = self.db(0.0)
        if gap(low) <= 0:
            unit_time = low
        else:
            high = low
            for _ in range(200):
                high *= 2.0
                if gap(high) <= 0:
                    break
            else:  # pragma: no cover - guarded by the slope test above
                return None
            for _ in range(100):
                mid = 0.5 * (low + high)
                if gap(mid) > 0:
                    low = mid
                else:
                    high = mid
            unit_time = high
        gmpl = load * unit_time
        return ModelSolution(
            throughput_per_s,
            work_units,
            unit_time,
            gmpl,
            extrapolated=gmpl > self.db.max_gmpl,
        )

    def unit_time(self, throughput_per_s: float, work_units: float) -> float | None:
        """UnitTime (ms) at the operating point, or None if saturated."""
        solution = self.solve(throughput_per_s, work_units)
        return solution.unit_time_ms if solution is not None else None

    # -- feasibility bound -------------------------------------------------

    def max_work(self, throughput_per_s: float, precision: float = 1e-3) -> float:
        """Largest Work per instance for which Eq. (6) has a solution.

        This is the paper's "upper bound on the amount of work that can be
        performed for each decision flow instance" at a given throughput.
        Infinite when the Db tail is flat (a database that never saturates).
        """
        if throughput_per_s <= 0:
            return float("inf")
        slope = self.db.tail_slope
        if slope <= 0:
            return float("inf")
        bound = _MS_PER_S / (throughput_per_s * slope)
        # The supremum itself is unattainable (UnitTime diverges); report
        # the last solvable value under the requested precision.
        low, high = 0.0, bound
        while high - low > precision:
            mid = 0.5 * (low + high)
            if self.solve(throughput_per_s, mid) is not None:
                low = mid
            else:
                high = mid
        return low

    def max_throughput(self, work_units: float, precision: float = 1e-4) -> float:
        """Largest sustainable throughput for instances of the given Work."""
        if work_units <= 0:
            return float("inf")
        slope = self.db.tail_slope
        if slope <= 0:
            return float("inf")
        bound = _MS_PER_S / (work_units * slope)
        low, high = 0.0, bound
        while high - low > precision:
            mid = 0.5 * (low + high)
            if self.solve(mid, work_units) is not None:
                low = mid
            else:
                high = mid
        return low

    # -- Equation (1) --------------------------------------------------------

    def predict_seconds(
        self, throughput_per_s: float, work_units: float, time_in_units: float
    ) -> float | None:
        """Predicted TimeInSeconds for a strategy profile; None if saturated."""
        solution = self.solve(throughput_per_s, work_units)
        if solution is None:
            return None
        return solution.time_in_seconds(time_in_units)
