"""Analytical model (Eq. 1-6), guideline maps, and strategy tuning."""

from repro.analysis.guidelines import (
    FrontierStep,
    StrategyPoint,
    guideline_frontier,
    min_time_for_budget,
)
from repro.analysis.mining import (
    Refinement,
    SnapshotRecord,
    SnapshotTable,
    suggest_refinements,
)
from repro.analysis.model import AnalyticalModel, ModelSolution
from repro.analysis.tuning import StrategyPrediction, TuningReport, tune

__all__ = [
    "AnalyticalModel",
    "ModelSolution",
    "SnapshotRecord",
    "SnapshotTable",
    "Refinement",
    "suggest_refinements",
    "StrategyPoint",
    "FrontierStep",
    "guideline_frontier",
    "min_time_for_budget",
    "StrategyPrediction",
    "TuningReport",
    "tune",
]
