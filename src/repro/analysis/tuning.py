"""Strategy tuning for a target throughput (the Figure 9(b) procedure).

Given (i) strategy profiles (Work, TimeInUnits) measured on the ideal
database, (ii) the empirical Db function of the production database, and
(iii) a target throughput, predict each strategy's TimeInSeconds via the
analytical model and pick the minimum — the paper's two-step prescription:

1. Equation (6) bounds the Work affordable at the target throughput;
2. among strategies within the bound, the predicted response time
   ``TimeInUnits × UnitTime`` selects the winner (their Figure 9(b)
   operating point selects PC*100%, within 10% of measurement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.analysis.guidelines import StrategyPoint
from repro.analysis.model import AnalyticalModel
from repro.simdb.profiler import DbFunction

__all__ = ["StrategyPrediction", "TuningReport", "tune"]


@dataclass(frozen=True)
class StrategyPrediction:
    """Model outputs for one strategy at the target throughput."""

    code: str
    work: float
    time_units: float
    unit_time_ms: float | None        # None: Eq. (6) has no solution (saturated)
    predicted_seconds: float | None
    gmpl: float | None

    @property
    def feasible(self) -> bool:
        return self.predicted_seconds is not None


@dataclass(frozen=True)
class TuningReport:
    """All predictions plus the recommended strategy."""

    throughput_per_s: float
    max_work: float
    predictions: tuple[StrategyPrediction, ...]

    @property
    def best(self) -> StrategyPrediction | None:
        feasible = [p for p in self.predictions if p.feasible]
        if not feasible:
            return None
        return min(feasible, key=lambda p: (p.predicted_seconds, p.code))

    def feasible_codes(self) -> tuple[str, ...]:
        return tuple(p.code for p in self.predictions if p.feasible)


def tune(
    points: Iterable[StrategyPoint],
    db: DbFunction,
    throughput_per_s: float,
) -> TuningReport:
    """Predict response times for every strategy profile and rank them."""
    model = AnalyticalModel(db)
    predictions: list[StrategyPrediction] = []
    for point in sorted(points, key=lambda p: p.code):
        solution = model.solve(throughput_per_s, point.work)
        if solution is None:
            predictions.append(
                StrategyPrediction(point.code, point.work, point.time_units, None, None, None)
            )
        else:
            predictions.append(
                StrategyPrediction(
                    point.code,
                    point.work,
                    point.time_units,
                    solution.unit_time_ms,
                    solution.time_in_seconds(point.time_units),
                    solution.gmpl,
                )
            )
    return TuningReport(
        throughput_per_s=throughput_per_s,
        max_work=model.max_work(throughput_per_s),
        predictions=tuple(predictions),
    )
