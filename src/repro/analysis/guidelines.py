"""Guideline maps: minimal response time achievable under a Work budget.

Figure 8 of the paper plots, for a schema pattern, the minimal TimeInUnits
(*minT*) obtainable for a given bound on Work, annotated with the execution
strategy that achieves it.  Together with Equation (6)'s Work bound, these
maps answer design-phase questions like "can this schema sustain 50
instances/second, and with which strategy?".

The map is the lower-left Pareto frontier of strategy profiles — each
profile is a (Work, TimeInUnits) point measured on the ideal database.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["StrategyPoint", "FrontierStep", "guideline_frontier", "min_time_for_budget"]


@dataclass(frozen=True)
class StrategyPoint:
    """Measured (Work, TimeInUnits) profile of one strategy on one pattern."""

    code: str
    work: float
    time_units: float


@dataclass(frozen=True)
class FrontierStep:
    """One step of the guideline map: spending >= ``work`` buys ``time_units``."""

    work: float
    time_units: float
    code: str


def guideline_frontier(points: Iterable[StrategyPoint]) -> list[FrontierStep]:
    """The Pareto steps of minT vs Work.

    Sorted by increasing work; each step strictly improves the minimal
    response time over all cheaper strategies (ties favor less work, then
    the lexicographically first code for determinism).
    """
    ordered = sorted(points, key=lambda p: (p.work, p.time_units, p.code))
    frontier: list[FrontierStep] = []
    best = float("inf")
    for point in ordered:
        if point.time_units < best:
            best = point.time_units
            frontier.append(FrontierStep(point.work, point.time_units, point.code))
    return frontier


def min_time_for_budget(
    frontier: Sequence[FrontierStep], work_budget: float
) -> FrontierStep | None:
    """Best achievable step within the Work budget (None if unattainable).

    E.g. the paper's reading of Figure 8(b): "for a work limit of 40 units,
    the minimal response time can be obtained with PS*100%"; and "no
    implementation can guarantee a work limit of 25 units with schemas of
    8 rows" — the None case.
    """
    best: FrontierStep | None = None
    for step in frontier:
        if step.work <= work_budget:
            best = step
        else:
            break
    return best
