"""Snapshot reporting and mining (paper §2, "Declarative semantics").

    "Snapshots can provide a basis for reporting on the behavior of a
    decision flow.  In particular, a (possibly nested) relation can be
    formed, where each tuple is the snapshot of one execution ...  Manual
    and automated data mining techniques can be performed on this
    relation, to discover possible refinements to the decision flow."

:class:`SnapshotTable` is that relation: one record per executed instance,
holding each attribute's terminal state and value (or the fact that the
optimizer never evaluated it).  :func:`suggest_refinements` runs simple
mining passes over it and emits actionable findings:

* **always-enabled** — the enabling condition is (almost) never false:
  consider dropping the condition and its enabling edges;
* **never-enabled** — the attribute is (almost) never enabled: consider
  retiring it, or demoting its query's scheduling priority;
* **constant-value** — an enabled query (almost) always returns the same
  value: consider replacing the database dip with a constant or cache;
* **expensive-rarely-used** — a costly query whose value is rarely needed:
  a prime candidate for stronger gating or for the Cheapest heuristic's
  attention;
* **implied-enablement** — one attribute's enablement (almost) always
  implies another's; the flow's conditions may be refactorable.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.instance import InstanceRuntime
from repro.core.schema import DecisionFlowSchema
from repro.core.sharing import freeze
from repro.core.state import AttributeState
from repro.bench.report import format_table

__all__ = ["SnapshotRecord", "SnapshotTable", "Refinement", "suggest_refinements"]


@dataclass(frozen=True)
class SnapshotRecord:
    """One tuple of the snapshot relation: the outcome of one instance."""

    instance_id: str
    states: dict[str, AttributeState]
    values: dict[str, object]
    work_units: int
    elapsed: float


@dataclass
class SnapshotTable:
    """The snapshot relation of a decision flow across many executions."""

    schema: DecisionFlowSchema
    records: list[SnapshotRecord] = field(default_factory=list)

    @classmethod
    def collect(cls, schema: DecisionFlowSchema, instances: Iterable[InstanceRuntime]) -> "SnapshotTable":
        table = cls(schema)
        for instance in instances:
            table.add_instance(instance)
        return table

    def add_instance(self, instance: InstanceRuntime) -> None:
        if not instance.done:
            raise ValueError(f"instance {instance.instance_id} has not finished")
        self.records.append(
            SnapshotRecord(
                instance_id=instance.instance_id,
                states=instance.state_map(),
                values=instance.value_map(),
                work_units=instance.metrics.work_units,
                elapsed=instance.metrics.elapsed,
            )
        )

    def __len__(self) -> int:
        return len(self.records)

    # -- per-attribute statistics -------------------------------------------

    def observed_count(self, name: str) -> int:
        """Executions in which *name* reached a stable state."""
        return sum(1 for r in self.records if r.states[name].stable)

    def enabled_count(self, name: str) -> int:
        return sum(1 for r in self.records if r.states[name] is AttributeState.VALUE)

    def enabled_frequency(self, name: str) -> float:
        """P(enabled | observed) — None-safe: 0.0 when never observed."""
        observed = self.observed_count(name)
        return self.enabled_count(name) / observed if observed else 0.0

    def observed_frequency(self, name: str) -> float:
        return self.observed_count(name) / len(self.records) if self.records else 0.0

    def value_counts(self, name: str) -> Counter:
        """Distribution of (frozen) values when the attribute was enabled."""
        counts: Counter = Counter()
        for record in self.records:
            if record.states[name] is AttributeState.VALUE:
                counts[freeze(record.values[name])] += 1
        return counts

    def dominant_value_frequency(self, name: str) -> float:
        counts = self.value_counts(name)
        total = sum(counts.values())
        return max(counts.values()) / total if total else 0.0

    def mean_work(self) -> float:
        return sum(r.work_units for r in self.records) / len(self.records) if self.records else 0.0

    # -- rendering --------------------------------------------------------------

    def summary_rows(self) -> list[list[object]]:
        rows = []
        for name in self.schema.non_source_names:
            rows.append(
                [
                    name,
                    self.schema[name].cost,
                    self.observed_frequency(name),
                    self.enabled_frequency(name),
                    self.dominant_value_frequency(name),
                ]
            )
        return rows

    def render(self) -> str:
        header = (
            f"snapshot relation for {self.schema.name!r}: {len(self.records)} executions, "
            f"mean work {self.mean_work():.1f} units"
        )
        table = format_table(
            ["attribute", "cost", "observed", "enabled|obs", "dominant value"],
            self.summary_rows(),
            floatfmt=".2f",
        )
        return header + "\n" + table


@dataclass(frozen=True)
class Refinement:
    """One mining finding with a human-readable rationale."""

    kind: str
    attribute: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.attribute}: {self.detail}"


def suggest_refinements(
    table: SnapshotTable,
    always_threshold: float = 0.98,
    never_threshold: float = 0.02,
    constant_threshold: float = 0.98,
    expensive_cost: int = 4,
    rare_frequency: float = 0.2,
    implication_threshold: float = 0.99,
    min_support: int = 10,
) -> list[Refinement]:
    """Mine the snapshot relation for candidate flow refinements."""
    refinements: list[Refinement] = []
    if len(table.records) < min_support:
        return refinements
    schema = table.schema

    for name in schema.non_source_names:
        spec = schema[name]
        observed = table.observed_count(name)
        if observed < min_support:
            continue
        enabled_freq = table.enabled_frequency(name)
        has_condition = bool(spec.condition.refs())

        if has_condition and enabled_freq >= always_threshold:
            refinements.append(
                Refinement(
                    "always-enabled",
                    name,
                    f"condition true in {enabled_freq:.0%} of {observed} observations; "
                    "consider removing the condition (and its enabling edges)",
                )
            )
        if enabled_freq <= never_threshold:
            refinements.append(
                Refinement(
                    "never-enabled",
                    name,
                    f"enabled in only {enabled_freq:.0%} of {observed} observations; "
                    "consider retiring the attribute or demoting its priority",
                )
            )
        if spec.cost > 0 and table.enabled_count(name) >= min_support:
            dominant = table.dominant_value_frequency(name)
            if dominant >= constant_threshold:
                refinements.append(
                    Refinement(
                        "constant-value",
                        name,
                        f"query returned one value in {dominant:.0%} of enabled runs; "
                        "consider a cache or constant in place of the database dip",
                    )
                )
        if spec.cost >= expensive_cost and 0 < enabled_freq <= rare_frequency:
            refinements.append(
                Refinement(
                    "expensive-rarely-used",
                    name,
                    f"cost {spec.cost} units but enabled in only {enabled_freq:.0%}; "
                    "gate it behind cheaper conditions or schedule it last",
                )
            )

    refinements.extend(
        _implication_findings(table, implication_threshold, min_support)
    )
    return refinements


def _implication_findings(
    table: SnapshotTable, threshold: float, min_support: int
) -> list[Refinement]:
    """Pairwise enabled(a) ⇒ enabled(b) rules with high confidence."""
    findings: list[Refinement] = []
    names = [
        n
        for n in table.schema.internal_names
        if table.schema[n].condition.refs() and table.enabled_count(n) >= min_support
    ]
    for a in names:
        for b in names:
            if a == b:
                continue
            both = sum(
                1
                for record in table.records
                if record.states[a] is AttributeState.VALUE
                and record.states[b] is AttributeState.VALUE
            )
            support_a = table.enabled_count(a)
            confidence = both / support_a
            if confidence >= threshold:
                findings.append(
                    Refinement(
                        "implied-enablement",
                        a,
                        f"enabled({a}) implies enabled({b}) with {confidence:.0%} confidence "
                        f"over {support_a} runs; their conditions may be refactorable",
                    )
                )
    return findings
