"""Typed service events: the observable internals of a DecisionService.

The engine exposes a low-level :class:`~repro.core.engine.EngineObserver`
seam; this module turns those callbacks into immutable, timestamped event
records and fans them out to any number of subscribed handlers — the
"observable box" that tracing and metrics exporters hook into.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.engine import EngineObserver
from repro.core.instance import InstanceRuntime
from repro.core.metrics import InstanceMetrics

__all__ = [
    "LaunchEvent",
    "QueryDoneEvent",
    "InstanceCompleteEvent",
    "EventLog",
]


@dataclass(frozen=True)
class LaunchEvent:
    """A task launch was decided for an attribute.

    ``shared`` is ``None`` for a real database dispatch, ``"hit"`` for a
    share-table answer, ``"join"`` for piggybacking on an in-flight query.
    """

    time: float
    instance_id: str
    attribute: str
    speculative: bool
    shared: str | None


@dataclass(frozen=True)
class QueryDoneEvent:
    """The database finished (or cancelled) a query."""

    time: float
    instance_id: str
    attribute: str
    units: int
    completed: bool


@dataclass(frozen=True)
class InstanceCompleteEvent:
    """All targets of an instance are stable; metrics are final."""

    time: float
    instance_id: str
    metrics: InstanceMetrics


class _Dispatcher(EngineObserver):
    """Adapts engine callbacks to typed events and fans them out.

    ``clock`` supplies the current simulated time (the service passes the
    backend simulation's ``now``).
    """

    def __init__(self, clock: Callable[[], float]):
        self._clock = clock
        self.launch_handlers: list[Callable[[LaunchEvent], None]] = []
        self.query_done_handlers: list[Callable[[QueryDoneEvent], None]] = []
        self.complete_handlers: list[Callable[[InstanceCompleteEvent], None]] = []

    @property
    def has_listeners(self) -> bool:
        """Whether any handler is subscribed to any stream.

        Aggregated emission paths (cohort fan-out) consult this per event
        batch: with no subscriber, per-member event construction is pure
        overhead and may be skipped — a later subscriber starts receiving
        events from the next batch on, exactly as with plain dispatch.
        """
        return bool(
            self.launch_handlers or self.query_done_handlers or self.complete_handlers
        )

    def on_launch(
        self, instance: InstanceRuntime, name: str, *, speculative: bool, shared: str | None
    ) -> None:
        if not self.launch_handlers:
            return
        event = LaunchEvent(
            time=self._clock(),
            instance_id=instance.instance_id,
            attribute=name,
            speculative=speculative,
            shared=shared,
        )
        for handler in list(self.launch_handlers):
            handler(event)

    def on_query_done(
        self, instance: InstanceRuntime, name: str, *, units: int, completed: bool
    ) -> None:
        if not self.query_done_handlers:
            return
        event = QueryDoneEvent(
            time=self._clock(),
            instance_id=instance.instance_id,
            attribute=name,
            units=units,
            completed=completed,
        )
        for handler in list(self.query_done_handlers):
            handler(event)

    def on_instance_complete(self, instance: InstanceRuntime) -> None:
        if not self.complete_handlers:
            return
        event = InstanceCompleteEvent(
            time=self._clock(),
            instance_id=instance.instance_id,
            metrics=instance.metrics,
        )
        for handler in list(self.complete_handlers):
            handler(event)


class EventLog:
    """A convenience subscriber that records every event in order.

    Attach with ``service.attach_log()`` (or subscribe manually) and read
    ``log.events`` afterwards — handy in tests and for post-hoc tracing.
    """

    def __init__(self):
        self.events: list[object] = []

    def __call__(self, event: object) -> None:
        self.events.append(event)

    def of_type(self, event_type: type) -> list[object]:
        return [e for e in self.events if isinstance(e, event_type)]

    def __len__(self) -> int:
        return len(self.events)
