"""One immutable configuration object for decision-flow execution.

:class:`ExecutionConfig` gathers every knob that was previously scattered
across ``Engine`` constructor kwargs (``halt_policy``, ``share_results``),
:class:`~repro.core.strategy.Strategy` (options and %Permitted), and the
ad-hoc backend plumbing of the benchmark drivers.  A config is a value:
build one once, derive variants with :meth:`ExecutionConfig.replace`, and
hand it to any number of :class:`~repro.api.service.DecisionService`
instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from types import MappingProxyType
from typing import Any, Mapping

from repro.core.strategy import Strategy
from repro.errors import StrategyError

__all__ = [
    "ExecutionConfig",
    "HALT_POLICIES",
    "ENGINES",
    "EXECUTORS",
    "DISPATCH_MODES",
    "PLACEMENTS",
]

HALT_POLICIES = ("cancel", "drain")

#: DES drain modes selectable per config: ``"per-event"`` steps the
#: calendar one event at a time (the reference); ``"pooled"`` drains
#: whole same-instant event pools through the engine's batch consumer
#: (identical observable trace; pays off on pool-heavy sweeps, best
#: combined with ``query_cache`` — thin pools can cost a few percent).
DISPATCH_MODES = ("per-event", "pooled")

#: Execution-engine implementations selectable per config: the name-keyed
#: reference engine, or the compiled-plan batched engine (identical
#: observable semantics, faster on multi-instance sweeps).
ENGINES = ("reference", "batched")

#: Shard-executor implementations selectable per config: ``"serial"``
#: drives every shard in-process on one thread (deterministic, the
#: differential reference), ``"process"`` ships shard workloads to a
#: ``multiprocessing`` pool.  Kept in lockstep with the registry in
#: :mod:`repro.runtime.executors`.
EXECUTORS = ("serial", "process")

#: Shard-placement policies for the sharded runtime: ``"hash"`` routes
#: each instance to its CRC-32 home shard (stable, stateless, the
#: reference); ``"least-loaded"`` routes each new submission to the shard
#: with the fewest instances still in flight (assigned minus completed as
#: of the last drain, ties to the lowest shard index) — deterministic
#: given submission order, and identical across executors because routing
#: happens in the parent.
PLACEMENTS = ("hash", "least-loaded")

#: Fields that live on the nested Strategy but are accepted by
#: ``ExecutionConfig.replace`` / ``from_code`` for convenience.
_STRATEGY_FIELDS = ("propagation", "speculative", "heuristic", "permitted", "cancel_unneeded")


@dataclass(frozen=True)
class ExecutionConfig:
    """The full recipe for executing decision-flow instances.

    ``strategy`` accepts either a :class:`Strategy` or a paper-style code
    string such as ``"PSE80"`` (coerced at construction).  ``backend``
    names a registered backend factory (``"ideal"``, ``"bounded"``,
    ``"profiled"``, or any third-party registration); ``backend_options``
    are forwarded to that factory.  ``engine`` selects the execution
    engine: ``"reference"`` (the name-keyed paper engine) or
    ``"batched"`` (compiled flow plans + flat array state; identical
    observable behavior, built for large instance populations).

    ``dispatch`` picks how each shard's DES calendar drains:
    ``"per-event"`` (the reference stepper) or ``"pooled"`` (same-instant
    event pools consumed in one pass by the engine — identical observable
    trace, lower dispatch overhead on large sweeps).  ``query_cache``
    arms the per-service :class:`~repro.simdb.database.QueryShareCache`:
    identical in-flight queries coalesce into one database dispatch and
    completed results memo-serve re-issues at zero cost (per shard;
    hit/miss/coalesce counters surface in ``summary()``).

    ``cohorts`` arms cohort execution on the batched engine: instances
    submitted at the same instant from the same typed start valuation
    form a *cohort* whose representative runs
    propagation/condition-resolution/scheduling once and fans its
    decisions out to the members, which split off into ordinary
    instances the moment any query outcome diverges.  Observable traces
    are identical by construction; ``cohort_hits`` / ``cohort_splits``
    counters surface in ``summary()``.  The reference engine accepts the
    flag but runs every instance individually, and the batched engine
    falls back to individual execution whenever cohorts would be unsound
    (engine-level ``share_results``, schemas whose start phase runs user
    code, or a throttled %Permitted combined with ``query_cache``).

    ``observe`` arms the :mod:`repro.obs` layer on every execution
    context built from this config: a per-service metrics registry and a
    bounded span tracer (flight recorder) instrumenting plan compilation,
    scheduling rounds, the query lifecycle, pooled DES drains, and cohort
    formation/splits.  Instrumentation is provably invisible to execution
    (identical event order, RNG draws, and cohort decisions); disarmed it
    costs one boolean test per hook.

    ``shards`` and ``executor`` configure the sharded runtime
    (:class:`repro.runtime.ShardedDecisionService`): instances are
    partitioned across ``shards`` independent engine + DES + database
    replicas, driven either in-process (``executor="serial"``) or by a
    fleet of long-lived worker processes (``executor="process"``, one
    persistent worker per shard streaming ops over pipes).  ``placement``
    picks the routing policy — ``"hash"`` (stable CRC-32 homes) or
    ``"least-loaded"`` (skew-rebalancing: new work goes to the shard with
    the fewest instances in flight).  With ``query_cache`` armed and
    ``shards > 1``, the runtime adds a shared **L2 tier** above the
    per-shard caches: keys completed by any shard are committed at round
    boundaries and probed by every shard's L1 on a miss
    (``query_cache_l2_*`` counters in ``summary()``).  A plain
    :class:`~repro.api.service.DecisionService` is single-shard by
    definition and ignores these fields; :func:`repro.runtime.create_service`
    picks the right facade from them.
    """

    strategy: Strategy = field(default_factory=Strategy)
    halt_policy: str = "cancel"
    share_results: bool = False
    backend: str = "ideal"
    backend_options: Mapping[str, Any] = field(default_factory=dict)
    engine: str = "reference"
    shards: int = 1
    executor: str = "serial"
    placement: str = "hash"
    dispatch: str = "per-event"
    query_cache: bool = False
    cohorts: bool = False
    observe: bool = False

    def __post_init__(self):
        if isinstance(self.strategy, str):
            object.__setattr__(self, "strategy", Strategy.parse(self.strategy))
        elif not isinstance(self.strategy, Strategy):
            raise StrategyError(
                f"strategy must be a Strategy or code string, got {self.strategy!r}"
            )
        if self.halt_policy not in HALT_POLICIES:
            raise ValueError(
                f"halt_policy must be one of {HALT_POLICIES}, got {self.halt_policy!r}"
            )
        if not isinstance(self.backend, str) or not self.backend:
            raise ValueError(f"backend must be a non-empty name string, got {self.backend!r}")
        if self.engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {self.engine!r}")
        if (
            not isinstance(self.shards, int)
            or isinstance(self.shards, bool)
            or self.shards < 1
        ):
            raise ValueError(f"shards must be an int >= 1, got {self.shards!r}")
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {self.executor!r}"
            )
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"placement must be one of {PLACEMENTS}, got {self.placement!r}"
            )
        if self.dispatch not in DISPATCH_MODES:
            raise ValueError(
                f"dispatch must be one of {DISPATCH_MODES}, got {self.dispatch!r}"
            )
        if not isinstance(self.query_cache, bool):
            raise ValueError(
                f"query_cache must be a bool, got {self.query_cache!r}"
            )
        if not isinstance(self.cohorts, bool):
            raise ValueError(
                f"cohorts must be a bool, got {self.cohorts!r}"
            )
        if not isinstance(self.observe, bool):
            raise ValueError(
                f"observe must be a bool, got {self.observe!r}"
            )
        # Freeze the options mapping so the config stays a value.
        object.__setattr__(
            self, "backend_options", MappingProxyType(dict(self.backend_options))
        )

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_code(cls, code: str, **overrides: Any) -> "ExecutionConfig":
        """Build a config from a strategy code, e.g. ``from_code("PSE80")``.

        Keyword overrides accept both config fields (``halt_policy``,
        ``share_results``, ``backend``, ``backend_options``) and strategy
        fields (``permitted``, ``cancel_unneeded``, ...), which are folded
        into the parsed strategy.
        """
        strategy_overrides = {
            key: overrides.pop(key) for key in _STRATEGY_FIELDS if key in overrides
        }
        strategy = Strategy.parse(code)
        if strategy_overrides:
            strategy = strategy.replace(**strategy_overrides)
        return cls(strategy=strategy, **overrides)

    def replace(self, **changes: Any) -> "ExecutionConfig":
        """A copy with the given fields replaced.

        Strategy-level fields route into ``strategy.replace`` so callers
        can write ``config.replace(permitted=50, share_results=True)``
        without unpacking the nested strategy.
        """
        strategy_changes = {
            key: changes.pop(key) for key in _STRATEGY_FIELDS if key in changes
        }
        config_fields = {f.name for f in fields(self)}
        unknown = set(changes) - config_fields
        if unknown:
            raise ValueError(
                f"unknown config field(s) {sorted(unknown)}; expected a subset of "
                f"{sorted(config_fields | set(_STRATEGY_FIELDS))}"
            )
        current = {f.name: getattr(self, f.name) for f in fields(self)}
        current.update(changes)
        if strategy_changes:
            base = current["strategy"]
            if isinstance(base, str):
                base = Strategy.parse(base)
            current["strategy"] = base.replace(**strategy_changes)
        return ExecutionConfig(**current)

    # -- strategy passthroughs ------------------------------------------------

    @property
    def code(self) -> str:
        """The paper-style strategy code, e.g. ``"PSE80"``."""
        return self.strategy.code

    @property
    def permitted(self) -> int:
        return self.strategy.permitted

    @property
    def cancel_unneeded(self) -> bool:
        return self.strategy.cancel_unneeded

    def __repr__(self) -> str:
        extras = []
        if self.engine != "reference":
            extras.append(f"engine={self.engine}")
        if self.shards != 1 or self.executor != "serial":
            extras.append(f"shards={self.shards}x{self.executor}")
        if self.placement != "hash":
            extras.append(f"placement={self.placement}")
        if self.halt_policy != "cancel":
            extras.append(f"halt={self.halt_policy}")
        if self.dispatch != "per-event":
            extras.append(f"dispatch={self.dispatch}")
        if self.query_cache:
            extras.append("query-cache")
        if self.cohorts:
            extras.append("cohorts")
        if self.observe:
            extras.append("observe")
        if self.share_results:
            extras.append("shared")
        if self.cancel_unneeded:
            extras.append("+cancel-unneeded")
        if self.backend_options:
            extras.append(f"options={dict(self.backend_options)!r}")
        suffix = (" " + " ".join(extras)) if extras else ""
        return f"<ExecutionConfig {self.code} backend={self.backend!r}{suffix}>"
