"""repro.api — the high-level public interface to the decision-flow engine.

This package is the canonical entry point for executing decision flows:

* :class:`ExecutionConfig` — one immutable value holding every execution
  knob (strategy, %Permitted, halt policy, result sharing, backend, and
  the ``engine`` selector: the name-keyed ``"reference"`` engine or the
  compiled-plan ``"batched"`` engine for large instance populations).
* The **backend registry** — named database substrates (``"ideal"``,
  ``"bounded"``, ``"profiled"``) behind :func:`create_backend`, extensible
  via :func:`register_backend`.
* :class:`DecisionService` — a multi-instance facade over the engine with
  :class:`InstanceHandle` results, open/closed arrival helpers, and typed
  observer hooks (:meth:`~DecisionService.on_launch`,
  :meth:`~DecisionService.on_query_done`,
  :meth:`~DecisionService.on_instance_complete`).

Quickstart::

    from repro.api import DecisionService, ExecutionConfig

    service = DecisionService(schema, ExecutionConfig.from_code("PSE80"))
    handle = service.submit(source_values)
    print(handle.result(), handle.metrics.work_units)
"""

from repro.api.backends import (
    Backend,
    BackendFactory,
    available_backends,
    create_backend,
    register_backend,
)
from repro.api.config import ExecutionConfig
from repro.api.events import (
    EventLog,
    InstanceCompleteEvent,
    LaunchEvent,
    QueryDoneEvent,
)
from repro.api.service import DecisionService, InstanceHandle

__all__ = [
    "ExecutionConfig",
    "DecisionService",
    "InstanceHandle",
    "Backend",
    "BackendFactory",
    "register_backend",
    "create_backend",
    "available_backends",
    "LaunchEvent",
    "QueryDoneEvent",
    "InstanceCompleteEvent",
    "EventLog",
]
