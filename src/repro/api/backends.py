"""Named database backends and the pluggable backend registry.

A *backend* bundles a fresh discrete-event :class:`Simulation` with a
database server bound to it — everything a
:class:`~repro.api.service.DecisionService` needs to execute instances —
so callers pick substrates by name instead of wiring ``Simulation`` /
``DatabaseServer`` pairs by hand:

* ``"ideal"`` — the unbounded-resource :class:`IdealDatabase`; the clock
  counts units of processing (the paper's TimeInUnits).
* ``"bounded"`` — the physical :class:`SimulatedDatabase` with CPU/disk
  queues; the clock is in milliseconds (TimeInSeconds after /1000).
* ``"profiled"`` — a :class:`ProfiledDatabase` calibrated by an empirical
  Db function (profiled on demand via :func:`profile_database` when none
  is supplied); milliseconds, but far cheaper to simulate than
  ``"bounded"``.

Third parties extend the set with :func:`register_backend`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.simdb.database import (
    DatabaseServer,
    DbParams,
    IdealDatabase,
    ProfiledDatabase,
    SimulatedDatabase,
)
from repro.simdb.des import Simulation
from repro.simdb.profiler import DbFunction, profile_database

__all__ = [
    "Backend",
    "BackendFactory",
    "register_backend",
    "create_backend",
    "available_backends",
]


@dataclass(frozen=True)
class Backend:
    """A ready-to-run substrate: one simulation plus its database server.

    ``time_unit`` documents how to read the clock: ``"units"`` for the
    ideal database (TimeInUnits) and ``"ms"`` for the physical and
    profiled ones (TimeInSeconds = elapsed / 1000).
    """

    name: str
    simulation: Simulation
    database: DatabaseServer
    time_unit: str = "units"

    def __post_init__(self):
        if self.database.sim is not self.simulation:
            raise ValueError(
                f"backend {self.name!r}: database is bound to a different simulation"
            )
        if self.time_unit not in ("units", "ms"):
            raise ValueError(f"time_unit must be 'units' or 'ms', got {self.time_unit!r}")


#: A factory takes backend options and returns a fresh Backend.
BackendFactory = Callable[..., Backend]

_REGISTRY: dict[str, BackendFactory] = {}


def register_backend(name: str, factory: BackendFactory, *, replace: bool = False) -> None:
    """Register a named backend factory.

    The factory is called with the ``backend_options`` of the requesting
    config and must return a fresh :class:`Backend` on every call (engines
    must never share simulations by accident).  Pass ``replace=True`` to
    overwrite an existing registration.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"backend name must be a non-empty string, got {name!r}")
    if not callable(factory):
        raise TypeError(f"backend factory for {name!r} must be callable")
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"backend {name!r} is already registered; pass replace=True to override"
        )
    _REGISTRY[name] = factory


def create_backend(name: str, **options) -> Backend:
    """Instantiate a registered backend by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: {', '.join(available_backends())}"
        ) from None
    backend = factory(**options)
    if not isinstance(backend, Backend):
        raise TypeError(
            f"backend factory {name!r} returned {type(backend).__name__}, expected Backend"
        )
    return backend


def available_backends() -> tuple[str, ...]:
    """The registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


# -- built-in factories --------------------------------------------------------


def _ideal_backend(
    unit_duration: float = 1.0, failure_prob: float = 0.0, seed: int = 0
) -> Backend:
    simulation = Simulation()
    database = IdealDatabase(
        simulation, unit_duration=unit_duration, failure_prob=failure_prob, seed=seed
    )
    return Backend("ideal", simulation, database, time_unit="units")


def _bounded_backend(params: DbParams | None = None, seed: int = 0, **db_kwargs) -> Backend:
    if params is not None and db_kwargs:
        raise ValueError("pass either a DbParams instance or field overrides, not both")
    params = params or DbParams(**db_kwargs)
    simulation = Simulation()
    database = SimulatedDatabase(simulation, params, seed=seed)
    return Backend("bounded", simulation, database, time_unit="ms")


def _profiled_backend(
    db_function: DbFunction | None = None,
    params: DbParams | None = None,
    gmpl_levels: Sequence[int] = (1, 2, 4, 8, 16, 32),
    completions_per_level: int = 400,
    warmup: int = 80,
    mode: str = "closed",
    failure_prob: float = 0.0,
    seed: int = 0,
) -> Backend:
    if db_function is None:
        db_function = profile_database(
            params or DbParams(),
            gmpl_levels=gmpl_levels,
            completions_per_level=completions_per_level,
            warmup=warmup,
            seed=seed,
            mode=mode,
        )
    simulation = Simulation()
    database = ProfiledDatabase(
        simulation, db_function, failure_prob=failure_prob, seed=seed
    )
    return Backend("profiled", simulation, database, time_unit="ms")


register_backend("ideal", _ideal_backend)
register_backend("bounded", _bounded_backend)
register_backend("profiled", _profiled_backend)
