"""DecisionService: the multi-instance facade over the execution engine.

The paper's engine is inherently a *service*: many concurrent decision-flow
instances sharing one database under a tunable strategy.  This module is
that service as an object — construct it from a schema, an
:class:`~repro.api.config.ExecutionConfig`, and a named backend; submit
instances (individually, as an open arrival stream, or as a closed loop);
observe execution through typed event hooks; and read per-instance results
through :class:`InstanceHandle`.

    service = DecisionService(schema, ExecutionConfig.from_code("PSE80"))
    handle = service.submit({"customer_id": "alice", "amount": 25_000})
    print(handle.result(), handle.metrics.work_units)
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.api.backends import Backend, create_backend
from repro.api.config import ENGINES, ExecutionConfig
from repro.api.events import (
    EventLog,
    InstanceCompleteEvent,
    LaunchEvent,
    QueryDoneEvent,
    _Dispatcher,
)
from repro.core.batch_engine import BatchedEngine
from repro.core.engine import Engine
from repro.core.instance import InstanceRuntime
from repro.core.metrics import InstanceMetrics, MetricsSummary, summarize
from repro.core.schema import DecisionFlowSchema
from repro.core.strategy import Strategy
from repro.errors import ExecutionError
from repro.obs import NULL_OBS, Observability, export_chrome_trace

__all__ = ["DecisionService", "InstanceHandle", "coerce_config"]

#: Engine implementations behind ``ExecutionConfig.engine``; kept in
#: lockstep with the validation list in :data:`repro.api.config.ENGINES`
#: so a config that validates always resolves here.
_ENGINE_CLASSES = {"reference": Engine, "batched": BatchedEngine}

if set(_ENGINE_CLASSES) != set(ENGINES):  # pragma: no cover
    raise AssertionError(
        f"engine registry drift: config declares {ENGINES}, "
        f"service implements {tuple(_ENGINE_CLASSES)}"
    )


def coerce_config(config: "ExecutionConfig | Strategy | str | None") -> ExecutionConfig:
    """Normalize the flexible ``config`` argument services accept.

    ``None`` means the default config; a code string parses as a strategy;
    a :class:`Strategy` wraps into a default config.  Shared by
    :class:`DecisionService` and the sharded runtime so both facades accept
    exactly the same spellings.
    """
    if config is None:
        return ExecutionConfig()
    if isinstance(config, str):
        return ExecutionConfig.from_code(config)
    if isinstance(config, Strategy):
        return ExecutionConfig(strategy=config)
    if not isinstance(config, ExecutionConfig):
        raise TypeError(
            f"config must be ExecutionConfig, Strategy, or code string, got {config!r}"
        )
    return config


class InstanceHandle:
    """A submitted decision-flow instance: poll it, drive it, read it."""

    __slots__ = ("_service", "_instance")

    def __init__(self, service: "DecisionService", instance: InstanceRuntime):
        self._service = service
        self._instance = instance

    @property
    def instance_id(self) -> str:
        return self._instance.instance_id

    @property
    def done(self) -> bool:
        """Whether every target attribute is stable."""
        return self._instance.done

    @property
    def metrics(self) -> InstanceMetrics:
        """The live metrics counters (final once :attr:`done`)."""
        return self._instance.metrics

    @property
    def instance(self) -> InstanceRuntime:
        """The underlying runtime, for low-level inspection."""
        return self._instance

    def value(self, name: str) -> object:
        """The current value of one attribute (⊥ until stable)."""
        return self._instance.cells[name].value

    def wait(self) -> InstanceMetrics:
        """Advance the shared clock until this instance finishes.

        Returns the final metrics; raises :class:`ExecutionError` if the
        simulation runs dry with targets still unstable (a stalled flow).
        """
        if not self._instance.done:
            self._service.run()
        if not self._instance.done:
            unstable = [
                t
                for t in self._service.schema.target_names
                if not self._instance.cells[t].stable
            ]
            raise ExecutionError(
                f"instance {self.instance_id} stalled; unstable targets: {unstable}"
            )
        return self._instance.metrics

    def result(self) -> dict[str, object]:
        """The target attribute values, driving the clock if needed."""
        self.wait()
        return {
            name: self._instance.cells[name].value
            for name in self._service.schema.target_names
        }

    def __repr__(self) -> str:
        state = "done" if self.done else "running"
        return f"<InstanceHandle {self.instance_id!r} {state}>"


class DecisionService:
    """Execute decision-flow instances against a configured backend.

    ``config`` may be an :class:`ExecutionConfig`, a :class:`Strategy`, or
    a strategy code string (``"PSE80"``).  ``backend`` overrides the
    config's backend selection and may be a registered name or a
    pre-built :class:`Backend`; extra keyword arguments are forwarded to
    the backend factory.

    ``query_cache_l2`` is the sharded runtime's seam: a per-shard
    :class:`~repro.runtime.l2cache.ShardL2View` stacked under the
    service's :class:`~repro.simdb.database.QueryShareCache` so an
    L1 miss probes the fleet-wide tier before dispatching.  It is only
    consulted when ``config.query_cache`` is armed; plain single-service
    use leaves it ``None``.
    """

    def __init__(
        self,
        schema: DecisionFlowSchema,
        config: ExecutionConfig | Strategy | str | None = None,
        *,
        backend: Backend | str | None = None,
        query_cache_l2=None,
        **backend_options: Any,
    ):
        config = coerce_config(config)
        if isinstance(backend, Backend):
            if backend_options or config.backend_options:
                raise ValueError("backend_options are ignored with a pre-built Backend")
            config = config.replace(backend=backend.name)
            self.backend = backend
        else:
            if backend is not None:
                config = config.replace(backend=backend)
            if backend_options:
                merged = {**config.backend_options, **backend_options}
                config = config.replace(backend_options=merged)
            self.backend = create_backend(config.backend, **config.backend_options)

        self.schema = schema
        self.config = config
        self.obs = Observability.create() if config.observe else NULL_OBS
        self._dispatcher = _Dispatcher(lambda: self.backend.simulation.now)
        engine_cls = _ENGINE_CLASSES[config.engine]
        query_cache: Any = config.query_cache
        if query_cache and query_cache_l2 is not None:
            # Build the cache here so the sharded runtime's L2 view can
            # be threaded underneath it; the engine uses it as-is.
            from repro.simdb.database import QueryShareCache

            query_cache = QueryShareCache(self.backend.database, l2=query_cache_l2)
        self.engine = engine_cls(
            schema,
            config.strategy,
            self.backend.database,
            halt_policy=config.halt_policy,
            share_results=config.share_results,
            observer=self._dispatcher,
            query_cache=query_cache,
            cohorts=config.cohorts,
            obs=self.obs,
        )
        if config.dispatch == "pooled":
            self.engine.enable_pooled_dispatch()
        self._handles: list[InstanceHandle] = []

    # -- submission -----------------------------------------------------------

    def submit(
        self,
        source_values: Mapping[str, object] | None = None,
        *,
        at: float | None = None,
        instance_id: str | None = None,
    ) -> InstanceHandle:
        """Submit one instance (starting now, or at simulated time *at*)."""
        instance = self.engine.submit_instance(
            source_values, at=at, instance_id=instance_id
        )
        handle = InstanceHandle(self, instance)
        self._handles.append(handle)
        return handle

    def submit_stream(
        self,
        arrivals: Iterable[float | tuple[float, Mapping[str, object]]],
        values: Mapping[str, object] | Callable[[int], Mapping[str, object]] | None = None,
        *,
        run: bool = True,
    ) -> list[InstanceHandle]:
        """Open-system helper: submit instances at the given arrival times.

        *arrivals* is an iterable of absolute simulated times, or of
        ``(time, source_values)`` pairs.  With plain times, *values*
        supplies the source values — either one mapping shared by every
        instance or a callable of the arrival index.  By default the clock
        is then advanced until all work drains; pass ``run=False`` to
        submit only.
        """
        handles = []
        for index, arrival in enumerate(arrivals):
            if isinstance(arrival, tuple):
                at, source_values = arrival
            else:
                at = arrival
                source_values = values(index) if callable(values) else values
            handles.append(self.submit(source_values, at=at))
        if run:
            self.run()
        return handles

    def run_closed(
        self,
        n: int,
        *,
        concurrency: int = 1,
        values: Mapping[str, object] | Callable[[int], Mapping[str, object]] | None = None,
        instance_ids: Sequence[str] | None = None,
        run: bool = True,
    ) -> list[InstanceHandle]:
        """Closed-system helper: keep *concurrency* instances in flight.

        Submits *concurrency* instances immediately and replaces each one
        the moment it completes, until *n* have been submitted in total;
        then drains.  Returns the handles of all *n* instances.

        *instance_ids* (when given) supplies the id of each submission in
        order — the sharded runtime uses this to keep ids globally unique
        across shards.  ``run=False`` arms the loop without driving the
        clock (the replacement chain still fires once someone runs it);
        the returned list is the live handle list and keeps growing as
        replacements are submitted.
        """
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        if instance_ids is not None and len(instance_ids) != n:
            raise ValueError(
                f"instance_ids must supply exactly n={n} ids, got {len(instance_ids)}"
            )
        handles: list[InstanceHandle] = []

        def source_for(index: int) -> Mapping[str, object] | None:
            return values(index) if callable(values) else values

        def submit_next() -> None:
            index = len(handles)
            if index >= n:
                return
            instance = self.engine.submit_instance(
                source_for(index),
                instance_id=instance_ids[index] if instance_ids is not None else None,
                on_complete=lambda metrics: submit_next(),
            )
            handle = InstanceHandle(self, instance)
            handles.append(handle)
            self._handles.append(handle)

        for _ in range(min(concurrency, n)):
            submit_next()
        if run:
            self.run()
        return handles

    # -- driving and reading --------------------------------------------------

    def run(self, until: float | None = None) -> None:
        """Advance the backend's simulated clock (to *until*, or until idle)."""
        self.backend.simulation.run(until)

    @property
    def now(self) -> float:
        """The current simulated time of the backend."""
        return self.backend.simulation.now

    @property
    def database(self):
        """The backend's database server (work totals, Gmpl, ...)."""
        return self.backend.database

    @property
    def handles(self) -> tuple[InstanceHandle, ...]:
        """Every handle this service has issued, in submission order."""
        return tuple(self._handles)

    @property
    def completed(self) -> tuple[InstanceHandle, ...]:
        return tuple(h for h in self._handles if h.done)

    def summary(self) -> MetricsSummary:
        """Aggregate metrics over all finished instances.

        A service with no finished instances (nothing submitted yet, or
        everything still in flight) summarizes to a zeroed
        :class:`MetricsSummary` with ``count == 0`` rather than raising.
        With the query share cache armed, the summary carries its
        service-level hit/miss/coalesce counters; with cohort execution
        armed, its cohort hit/split totals.
        """
        summary = summarize(
            (h.metrics for h in self._handles if h.done), empty_ok=True
        )
        cache = self.engine.query_cache
        if cache is not None:
            summary = replace(
                summary,
                query_cache_hits=cache.hits,
                query_cache_misses=cache.misses,
                query_cache_coalesced=cache.coalesced,
                query_cache_l2_hits=cache.l2_hits,
                query_cache_l2_misses=cache.l2_misses,
                query_cache_l2_promotions=cache.l2_promotions,
            )
        if self.engine.cohorts:
            summary = replace(
                summary,
                cohort_hits=self.engine.cohort_hits,
                cohort_splits=self.engine.cohort_splits,
            )
        return summary

    def dispatch_stats(self) -> dict:
        """Pooled-dispatch counters (zero under per-event dispatch)."""
        return {
            "pooled_batches": self.engine.pooled_batches,
            "pooled_events": self.engine.pooled_events,
        }

    # -- observability (repro.obs) --------------------------------------------

    def observability(self) -> dict:
        """The armed registry snapshot, refreshed with point-in-time gauges.

        Disarmed services return an ``enabled: False`` snapshot with no
        entries; armed ones fold the live engine/DES/database/cache state
        into gauges before snapshotting, so the result is self-contained
        (JSON-able, mergeable across shards, renderable as Prometheus).
        """
        if not self.obs.enabled:
            return self.obs.registry.snapshot()
        registry = self.obs.registry
        simulation = self.backend.simulation
        database = self.backend.database
        registry.gauge("sim_time").set(simulation.now)
        registry.gauge("sim_events_executed").set(simulation.events_executed)
        registry.gauge("db_total_units").set(database.total_units)
        registry.gauge("db_mean_gmpl").set(database.mean_gmpl())
        registry.gauge("pooled_batches").set(self.engine.pooled_batches)
        registry.gauge("pooled_events").set(self.engine.pooled_events)
        registry.gauge("instances_submitted").set(len(self._handles))
        registry.gauge("instances_done").set(sum(1 for h in self._handles if h.done))
        cache = self.engine.query_cache
        if cache is not None:
            registry.gauge("query_cache_hits").set(cache.hits)
            registry.gauge("query_cache_misses").set(cache.misses)
            registry.gauge("query_cache_coalesced").set(cache.coalesced)
            if cache.l2 is not None:
                registry.gauge("query_cache_l2_hits").set(cache.l2_hits)
                registry.gauge("query_cache_l2_misses").set(cache.l2_misses)
                registry.gauge("query_cache_l2_promotions").set(cache.l2_promotions)
        if self.engine.cohorts:
            registry.gauge("cohort_hits").set(self.engine.cohort_hits)
            registry.gauge("cohort_splits").set(self.engine.cohort_splits)
        return registry.snapshot()

    def trace_groups(self) -> list[tuple[int, str, list]]:
        """Chrome-trace lanes: one per execution context (one here)."""
        return [(0, f"service:{self.schema.name}", self.obs.tracer.events())]

    def chrome_trace(self) -> dict:
        """The flight recorder as a Chrome-trace JSON object."""
        return export_chrome_trace(self.trace_groups(), armed=self.obs.enabled)

    # -- observation ----------------------------------------------------------

    def on_launch(self, handler: Callable[[LaunchEvent], None]):
        """Subscribe to task-launch events; usable as a decorator."""
        self._dispatcher.launch_handlers.append(handler)
        return handler

    def on_query_done(self, handler: Callable[[QueryDoneEvent], None]):
        """Subscribe to query-completion events; usable as a decorator."""
        self._dispatcher.query_done_handlers.append(handler)
        return handler

    def on_instance_complete(self, handler: Callable[[InstanceCompleteEvent], None]):
        """Subscribe to instance-completion events; usable as a decorator."""
        self._dispatcher.complete_handlers.append(handler)
        return handler

    def attach_log(self) -> EventLog:
        """Subscribe a fresh :class:`EventLog` to every event stream."""
        log = EventLog()
        self.on_launch(log)
        self.on_query_done(log)
        self.on_instance_complete(log)
        return log

    def __repr__(self) -> str:
        done = sum(1 for h in self._handles if h.done)
        return (
            f"<DecisionService {self.schema.name!r} {self.config.code} "
            f"backend={self.backend.name!r} instances={done}/{len(self._handles)} done>"
        )
