"""Quickstart: build a small decision flow by hand and execute it.

A loan pre-approval flow: two database dips (credit score, account
history) feed a risk decision; an expensive fraud check runs only for
large amounts.  The example executes the same instance under a sequential
conservative strategy and a fully parallel speculative one, and prints
the paper's metrics (Work, TimeInUnits) for both.

Run:  python examples/quickstart.py
"""

from repro import (
    Attribute,
    Comparison,
    DecisionFlowSchema,
    DecisionService,
    ExecutionConfig,
    NULL,
    Op,
    query,
    synthesize,
)


def customer_key(customer_id: str) -> int:
    """Deterministic stand-in for a database row id (hash() is salted)."""
    return sum(ord(ch) for ch in customer_id)


def build_schema() -> DecisionFlowSchema:
    # Source attributes: supplied per instance.
    customer_id = Attribute("customer_id", doc="who is asking")
    amount = Attribute("amount", doc="requested loan amount")

    # Foreign tasks: database dips with a cost in units of processing.
    credit_score = Attribute(
        "credit_score",
        task=query(
            "credit_score",
            inputs=("customer_id",),
            cost=3,
            fn=lambda v: 550 + (customer_key(v["customer_id"]) % 300),
            description="SELECT score FROM credit WHERE id = :customer_id",
        ),
    )
    history = Attribute(
        "history",
        task=query(
            "history",
            inputs=("customer_id",),
            cost=2,
            fn=lambda v: {"late_payments": customer_key(v["customer_id"]) % 3},
            description="SELECT * FROM accounts WHERE id = :customer_id",
        ),
    )
    # The fraud check is only enabled for large requests.
    fraud_check = Attribute(
        "fraud_check",
        task=query(
            "fraud_check",
            inputs=("customer_id",),
            cost=5,
            fn=lambda v: "clear",
            description="expensive cross-reference against the fraud mart",
        ),
        condition=Comparison("amount", Op.GE, 10_000),
    )

    # Synthesis task: combines everything in-engine (no database cost).
    def decide(values):
        score = values["credit_score"]
        late = values["history"]["late_payments"]
        fraud = values["fraud_check"]
        if fraud is not NULL and fraud != "clear":
            return "reject"
        if score >= 700 and late == 0:
            return "approve"
        if score >= 620 and late <= 1:
            return "review"
        return "reject"

    decision = Attribute(
        "decision",
        task=synthesize("decision", ("credit_score", "history", "fraud_check"), decide),
        is_target=True,
        doc="approve | review | reject",
    )

    return DecisionFlowSchema(
        [customer_id, amount, credit_score, history, fraud_check, decision],
        name="loan-preapproval",
    )


def run(schema: DecisionFlowSchema, code: str, source_values: dict) -> None:
    service = DecisionService(schema, ExecutionConfig.from_code(code), backend="ideal")
    handle = service.submit(source_values)
    decision = handle.result()["decision"]
    metrics = handle.metrics
    print(
        f"  {code:>7}: decision={decision!r:>9} "
        f"Work={metrics.work_units:>2} TimeInUnits={metrics.elapsed:>4.1f} "
        f"(queries launched={metrics.queries_launched})"
    )


def main() -> None:
    schema = build_schema()
    print(schema.describe())
    for amount in (2_500, 25_000):
        print(f"\ncustomer 'alice', amount ${amount:,}:")
        for code in ("PCE0", "PSE100"):
            run(schema, code, {"customer_id": "alice", "amount": amount})
    print(
        "\nNote: with amount < $10k the fraud check is DISABLED; the"
        " propagation option (P) never launches it, and the parallel"
        " speculative strategy trades extra work for response time."
    )


if __name__ == "__main__":
    main()
