"""Tuning an execution strategy for a target throughput (Figure 9(b)).

The full workflow of section 5's analytical model:

1. profile the database → the empirical Db function (Figure 9a);
2. profile candidate strategies on the ideal database → (Work,
   TimeInUnits) per strategy (the guideline map of Figure 8);
3. solve Equation (6) at the target throughput → predicted TimeInSeconds
   per strategy, plus the feasible-Work bound;
4. verify the recommendation with an open-system simulation.

Run:  python examples/strategy_tuning.py   (takes ~15s)
"""

from repro import DbParams, PatternParams, profile_database
from repro.analysis import guideline_frontier, tune
from repro.bench import (
    evaluate_codes,
    format_table,
    measure_open_system,
    strategy_points,
)
from repro.workload import generate_pattern

THROUGHPUT = 10.0  # decision-flow instances per second
CODES = ("PCE0", "PCC0", "PCE50", "PC*100", "PSE50", "PSE100")
PATTERN = PatternParams(nb_rows=4, pct_enabled=25)


def main() -> None:
    print(f"target: {THROUGHPUT:g} instances/second on the Table-1 database\n")

    print("1. profiling the database (open-loop Poisson unit stream)...")
    db = profile_database(DbParams(), completions_per_level=800, warmup=100, mode="open")
    print(
        format_table(
            ["Gmpl", "UnitTime_ms"], [[g, t] for g, t in db.points], floatfmt=".2f"
        )
    )

    print("\n2. profiling strategies on the ideal database (6 pattern seeds)...")
    results = evaluate_codes(PATTERN, CODES, seeds=range(6))
    points = strategy_points(results)
    frontier = guideline_frontier(points)
    print(
        format_table(
            ["budget >= Work", "minT (units)", "strategy"],
            [[step.work, step.time_units, step.code] for step in frontier],
            title="guideline map (Pareto steps)",
        )
    )

    print("\n3. analytical model at the target throughput...")
    report = tune(points, db, THROUGHPUT)
    rows = [
        [
            p.code,
            p.work,
            p.time_units,
            p.unit_time_ms,
            p.predicted_seconds * 1000.0 if p.feasible else None,
        ]
        for p in report.predictions
    ]
    print(
        format_table(
            ["strategy", "Work", "TimeInUnits", "UnitTime_ms", "predicted_ms"], rows
        )
    )
    print(f"\nEq.(6) Work bound at {THROUGHPUT:g}/s: {report.max_work:.1f} units")
    best = report.best
    print(f"model recommends: {best.code} ({best.predicted_seconds * 1000.0:.0f} ms)")

    print("\n4. verifying against an open-system simulation...")
    pattern = generate_pattern(PATTERN.with_seed(0))
    measured = measure_open_system(
        pattern, best.code, THROUGHPUT, n_instances=250, warmup_instances=50
    )
    predicted_ms = best.predicted_seconds * 1000.0
    error = abs(predicted_ms - measured.mean_ms) / measured.mean_ms * 100.0
    print(
        f"measured mean response for {best.code}: {measured.mean_ms:.0f} ms "
        f"(predicted {predicted_ms:.0f} ms, error {error:.0f}%); "
        f"mean Gmpl {measured.mean_gmpl:.1f}"
    )


if __name__ == "__main__":
    main()
