"""Insurance claims triage — a customer-care decision flow.

The paper motivates decision flows with customer-care applications
("e-commerce, call centers, insurance claims processing").  This example
triages an incoming auto claim: parallel database dips gather the policy,
the claimant's history and the repair estimate; business rules score the
claim; a special-investigations (SIU) referral path is enabled only for
suspicious claims.  The flow is executed under all four P-option strategy
families to show the work/time trade-off on a real-shaped flow.

Run:  python examples/claims_processing.py
"""

from repro import (
    Attribute,
    Comparison,
    DecisionFlowSchema,
    DecisionService,
    NULL,
    Op,
    Rule,
    query,
    rule_set,
    synthesize,
)

POLICIES = {
    "P-100": {"status": "active", "deductible": 500, "limit": 20_000},
    "P-200": {"status": "lapsed", "deductible": 250, "limit": 10_000},
}

CLAIM_HISTORY = {"alice": 0, "bob": 4}

REPAIR_ESTIMATES = {"C-1": 1_800, "C-2": 14_500}


def build_schema() -> DecisionFlowSchema:
    attributes = [
        Attribute("claim_id"),
        Attribute("claimant"),
        Attribute("policy_id"),
        Attribute(
            "policy",
            task=query(
                "policy",
                inputs=("policy_id",),
                cost=2,
                fn=lambda v: POLICIES.get(v["policy_id"], {"status": "unknown"}),
                description="policy master lookup",
            ),
        ),
        Attribute(
            "prior_claims",
            task=query(
                "prior_claims",
                inputs=("claimant",),
                cost=3,
                fn=lambda v: CLAIM_HISTORY.get(v["claimant"], 0),
                description="count of claims in the last 3 years",
            ),
        ),
        Attribute(
            "estimate",
            task=query(
                "estimate",
                inputs=("claim_id",),
                cost=2,
                fn=lambda v: REPAIR_ESTIMATES.get(v["claim_id"], 0),
                description="repair-shop estimate feed",
            ),
        ),
        # Fraud scoring runs only when the policy is active — business rules
        # with a summing policy, exactly the paper's synthesis flavor.
        Attribute(
            "fraud_score",
            task=rule_set(
                "fraud_score",
                ("prior_claims", "estimate"),
                rules=[
                    Rule("history", Comparison("prior_claims", Op.GE, 3), 40),
                    Rule("big_ticket", Comparison("estimate", Op.GE, 10_000), 35),
                    Rule("round_number", Comparison("estimate", Op.EQ, 14_500), 10),
                ],
                policy="sum",
                default=0,
            ),
            condition=Comparison("policy", Op.NE, None),
        ),
        # The expensive SIU referral dip is enabled only for high scores.
        Attribute(
            "siu_report",
            task=query(
                "siu_report",
                inputs=("claimant", "claim_id"),
                cost=6,
                fn=lambda v: {"finding": "inconclusive"},
                description="special-investigations cross-check (expensive)",
            ),
            condition=Comparison("fraud_score", Op.GE, 50),
        ),
        Attribute(
            "triage",
            task=synthesize(
                "triage",
                ("policy", "estimate", "fraud_score", "siu_report"),
                lambda v: _triage(v),
            ),
            is_target=True,
        ),
    ]
    return DecisionFlowSchema(attributes, name="claims-triage")


def _triage(values) -> str:
    policy = values["policy"]
    if policy is NULL or policy.get("status") != "active":
        return "deny (policy not active)"
    if values["siu_report"] is not NULL:
        return "hold for investigation"
    if values["estimate"] <= 2_500 and values["fraud_score"] < 30:
        return "fast-track payment"
    return "standard adjuster review"


CLAIMS = [
    {"claim_id": "C-1", "claimant": "alice", "policy_id": "P-100"},
    {"claim_id": "C-2", "claimant": "bob", "policy_id": "P-100"},
    {"claim_id": "C-1", "claimant": "alice", "policy_id": "P-200"},
]


def main() -> None:
    schema = build_schema()
    print(schema.describe())
    for claim in CLAIMS:
        print(f"\nclaim {claim['claim_id']} by {claim['claimant']} on {claim['policy_id']}:")
        for code in ("PCE0", "PCC0", "PCE100", "PSE100"):
            service = DecisionService(schema, code)
            handle = service.submit(dict(claim))
            triage = handle.result()["triage"]
            metrics = handle.metrics
            print(
                f"  {code:>7}: {triage:<28} "
                f"Work={metrics.work_units:>2} T={metrics.elapsed:>4.1f} "
                f"wasted={metrics.speculative_wasted_units}"
            )


if __name__ == "__main__":
    main()
