"""The paper's Figure 1: promo selection for a web storefront.

A clothing retailer generates a web page for a customer; the decision
flow picks which coat promos to show.  The example mirrors the paper's
modular schema — coat-promo modules guarded by enabling conditions, a
decision module built from business rules, and a presentation module —
then flattens it (Figure 1(b)) and executes it for several customers
against small in-memory "databases".

Run:  python examples/promo_storefront.py
"""

from repro import (
    Attribute,
    Comparison,
    Engine,
    IdealDatabase,
    Module,
    NULL,
    Op,
    Or,
    Rule,
    Simulation,
    Strategy,
    UserPredicate,
    flatten,
    query,
    rule_set,
    synthesize,
)

# ---------------------------------------------------------------------------
# Tiny in-memory "enterprise databases"
# ---------------------------------------------------------------------------

CLIMATE_DB = {"boston": "cold", "miami": "warm", "seattle": "wet"}

CATALOG = [
    {"item": "boys parka", "kind": "boys_coat", "price": 89, "profit": 30, "climate": "cold"},
    {"item": "boys raincoat", "kind": "boys_coat", "price": 49, "profit": 15, "climate": "wet"},
    {"item": "mens overcoat", "kind": "mens_coat", "price": 210, "profit": 70, "climate": "cold"},
    {"item": "mens windbreaker", "kind": "mens_coat", "price": 75, "profit": 20, "climate": "warm"},
]

INVENTORY = {"boys parka": 12, "boys raincoat": 0, "mens overcoat": 3, "mens windbreaker": 44}


# ---------------------------------------------------------------------------
# The decision flow (modular form, then flattened)
# ---------------------------------------------------------------------------


def boys_coat_trigger():
    """The paper's condition: a boy's item in the cart, or a child's item
    and a boy's purchase within two years."""
    return Or(
        UserPredicate("boy_item_in_cart", ("cart",), lambda v: "boy" in " ".join(v["cart"])),
        UserPredicate(
            "child_item_and_history",
            ("cart", "profile"),
            lambda v: any("child" in item for item in v["cart"])
            and v["profile"].get("bought_boys_item_recently", False),
        ),
    )


def build_flow() -> Module:
    root = Module("promo-flow")
    for source in ("profile", "cart", "home_city"):
        root.add(Attribute(source))

    boys = Module("boys_coat_promo", condition=boys_coat_trigger())
    boys.add(
        Attribute(
            "climate",
            task=query(
                "climate",
                inputs=("home_city",),
                cost=1,
                fn=lambda v: CLIMATE_DB.get(v["home_city"], "temperate"),
                description="dip: climate of customer home",
            ),
        )
    )
    boys.add(
        Attribute(
            "coat_hits",
            task=query(
                "coat_hits",
                inputs=("climate",),
                cost=2,
                fn=lambda v: [
                    c for c in CATALOG if c["kind"] == "boys_coat" and c["climate"] == v["climate"]
                ],
                description="hit list of appropriate coats",
            ),
        )
    )
    boys.add(
        Attribute(
            "coat_stock",
            task=query(
                "coat_stock",
                inputs=("coat_hits",),
                cost=2,
                fn=lambda v: [c for c in v["coat_hits"] if INVENTORY.get(c["item"], 0) > 0],
                description="check inventory for coats in appropriate size",
            ),
            condition=UserPredicate(
                "any_hit", ("coat_hits",), lambda v: v["coat_hits"] is not NULL and bool(v["coat_hits"])
            ),
        )
    )
    boys.add(
        Attribute(
            "boys_promo",
            task=synthesize(
                "boys_promo",
                ("coat_stock",),
                lambda v: [
                    {"promo": c["item"], "price": c["price"], "score": 60 + c["profit"]}
                    for c in (v["coat_stock"] if v["coat_stock"] is not NULL else [])
                ],
            ),
            condition=UserPredicate(
                "any_stock", ("coat_stock",), lambda v: v["coat_stock"] is not NULL and bool(v["coat_stock"])
            ),
        )
    )
    root.add(boys)

    decision = Module("decision")
    decision.add(
        Attribute(
            "expendable_income",
            task=query(
                "expendable_income",
                inputs=("profile", "cart"),
                cost=2,
                fn=lambda v: max(0, v["profile"].get("budget", 0) - 40 * len(v["cart"])),
                description="estimate customer expendable income",
            ),
        )
    )
    decision.add(
        Attribute(
            "promo_hit_list",
            task=synthesize(
                "promo_hit_list",
                ("boys_promo",),
                lambda v: sorted(
                    (v["boys_promo"] if v["boys_promo"] is not NULL else []),
                    key=lambda p: -p["score"],
                ),
            ),
        )
    )
    decision.add(
        Attribute(
            "give_promo",
            task=rule_set(
                "give_promo",
                ("expendable_income", "promo_hit_list"),
                rules=[
                    Rule(
                        "worth_it",
                        UserPredicate(
                            "good_candidates",
                            ("promo_hit_list",),
                            lambda v: bool(v["promo_hit_list"]) and v["promo_hit_list"][0]["score"] > 80,
                        ),
                        True,
                    ),
                ],
                policy="any",
                default=False,
            ),
            condition=Comparison("expendable_income", Op.GT, 0),
        )
    )
    root.add(decision)

    presentation = Module(
        "presentation", condition=Comparison("give_promo", Op.EQ, True)
    )
    presentation.add(
        Attribute(
            "images",
            task=query(
                "images",
                inputs=("promo_hit_list",),
                cost=3,
                fn=lambda v: [f"img/{p['promo'].replace(' ', '_')}.png" for p in v["promo_hit_list"][:2]],
                description="identify images with one or more promo items",
            ),
        )
    )
    presentation.add(
        Attribute(
            "page_fragment",
            task=synthesize(
                "page_fragment",
                ("images", "promo_hit_list"),
                lambda v: {
                    "banners": v["images"] if v["images"] is not NULL else [],
                    "offers": [p["promo"] for p in v["promo_hit_list"][:2]],
                },
            ),
            is_target=True,
        )
    )
    root.add(presentation)
    return root


CUSTOMERS = {
    "parent shopping for boy (Boston, wealthy)": {
        "profile": {"budget": 400, "bought_boys_item_recently": True},
        "cart": ["boys sweater", "child gloves"],
        "home_city": "boston",
    },
    "parent shopping for boy (Boston, no expendable income)": {
        "profile": {"budget": 30, "bought_boys_item_recently": True},
        "cart": ["boys sweater"],
        "home_city": "boston",
    },
    "no kids in cart (Miami)": {
        "profile": {"budget": 500},
        "cart": ["womens scarf"],
        "home_city": "miami",
    },
}


def main() -> None:
    flow = build_flow()
    schema = flatten(flow)
    print(schema.describe())
    print()

    for label, source_values in CUSTOMERS.items():
        simulation = Simulation()
        engine = Engine(schema, Strategy.parse("PSE100"), IdealDatabase(simulation))
        instance = engine.submit_instance(source_values)
        simulation.run()
        fragment = instance.cells["page_fragment"].value
        metrics = instance.metrics
        print(f"{label}:")
        if fragment is NULL:
            print("  -> no promo on this page")
        else:
            print(f"  -> offers: {fragment['offers']}  banners: {fragment['banners']}")
        print(
            f"     Work={metrics.work_units} TimeInUnits={metrics.elapsed:.0f} "
            f"queries={metrics.queries_launched} "
            f"unneeded skipped={metrics.unneeded_detected}"
        )
        print()


if __name__ == "__main__":
    main()
