"""Mining snapshot relations for flow refinements (paper §2).

The paper observes that the snapshots of many executions form a relation
on which "manual and automated data mining techniques can be performed
... to discover possible refinements to the decision flow".  This example
runs the claims-triage flow over a synthetic claim population, collects
the snapshot relation, and prints the mining report: enable frequencies
per attribute plus concrete refinement suggestions (never-enabled
branches, constant query results, expensive-but-rare dips).

Run:  python examples/flow_mining.py
"""

import random
import sys
from pathlib import Path

from repro import Engine, IdealDatabase, Simulation, Strategy
from repro.analysis import SnapshotTable, suggest_refinements

sys.path.insert(0, str(Path(__file__).resolve().parent))
from claims_processing import build_schema  # noqa: E402 (sibling example)


def synthetic_claims(count: int, seed: int = 42):
    """A claim population where fraud is rare and policies mostly active."""
    rng = random.Random(seed)
    for index in range(count):
        suspicious = rng.random() < 0.06
        yield {
            "claim_id": "C-2" if suspicious else "C-1",
            "claimant": "bob" if suspicious else "alice",
            "policy_id": "P-100" if rng.random() < 0.9 else "P-200",
        }


def main() -> None:
    schema = build_schema()
    simulation = Simulation()
    engine = Engine(schema, Strategy.parse("PCE100"), IdealDatabase(simulation))

    instances = [
        engine.submit_instance(claim, at=float(index * 20))
        for index, claim in enumerate(synthetic_claims(200))
    ]
    simulation.run()

    table = SnapshotTable.collect(schema, instances)
    print(table.render())
    print()

    refinements = suggest_refinements(table)
    if not refinements:
        print("no refinements suggested")
    for finding in refinements:
        print(str(finding))


if __name__ == "__main__":
    main()
